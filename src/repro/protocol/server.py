"""Server sites: long-term storage for objects (Section 5.1).

Each object has an authoritative server (``ObjectDirectory`` maps object
names onto a server ring).  A server stores the current version of each of
its objects and answers:

* ``FETCH`` — reply with a copy of the current version, with its ending
  time advanced to the server's present (the server holds the newest
  version, so it is valid *now*);
* ``VALIDATE`` — the if-modified-since exchange of Section 5.2: if the
  client's start time still matches, reply ``STILL_VALID`` (cheap control
  message) advancing the ending/checking time; otherwise ship the new
  version;
* ``WRITE`` — install a client's write-through if it is newer than the
  stored version (physical: larger start time wins; causal: causally later
  wins, with a deterministic total tiebreak for concurrent writes).

Optional *push propagation* (Section 5.2's asynchronous component): on
install, push the fresh version — or a small invalidation, per policy — to
every subscribed client.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.clocks.base import Ordering
from repro.clocks.vector import VectorTimestamp
from repro.protocol import messages
from repro.protocol.versions import LogicalVersion, PhysicalVersion
from repro.sim.kernel import Simulator
from repro.sim.network import Message, Network
from repro.sim.node import Node


class PushPolicy(enum.Enum):
    """What a server does towards subscribers when a write is installed."""

    NONE = "none"  # clients discover staleness themselves (pull)
    INVALIDATE = "invalidate"  # send small invalidations (Cao & Liu style)
    PUSH = "push"  # ship the new version eagerly


class ObjectDirectory:
    """Maps object names to server node ids.

    A thin adapter over a :class:`repro.ring.Ring`: each object hashes
    (md5-based :func:`repro.ring.stable_hash` — deterministic across
    interpreter runs, ``PYTHONHASHSEED`` never enters placement) into a
    partition whose *primary* device is the object's single
    authoritative server.  Pass ``ring`` to use a custom ring (weighted
    devices, ``replicas > 1`` for the net stack's replicated placement);
    by default an equal-weight ring over ``server_ids`` is built with
    ``part_power`` partition bits and one replica, which preserves the
    original single-authority semantics the simulator's correctness
    argument relies on.
    """

    def __init__(
        self,
        server_ids: List[int],
        part_power: int = 8,
        replicas: int = 1,
        ring=None,
    ) -> None:
        if not server_ids:
            raise ValueError("need at least one server")
        self.server_ids = sorted(server_ids)
        if ring is None:
            from repro.ring.ring import uniform_ring

            ring = uniform_ring(
                len(self.server_ids), part_power=part_power,
                replicas=replicas, device_ids=self.server_ids,
            )
        else:
            unknown = set(ring.device_ids()) - set(self.server_ids)
            if unknown:
                raise ValueError(
                    f"ring devices {sorted(unknown)} are not in "
                    f"server_ids {self.server_ids}"
                )
        self.ring = ring

    def server_for(self, obj: str) -> int:
        """The object's authoritative (primary) server."""
        return self.ring.primary_for(obj)

    def replicas_for(self, obj: str):
        """All servers holding the object — primary first."""
        return self.ring.replicas_for(obj)


class PhysicalServer(Node):
    """Authoritative store for the SC/TSC (physical-clock) protocols."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        initial_value: Any = 0,
        push_policy: PushPolicy = PushPolicy.NONE,
        clock=None,
    ) -> None:
        super().__init__(node_id, sim, network, clock)
        self.initial_value = initial_value
        self.push_policy = push_policy
        self.store: Dict[str, PhysicalVersion] = {}
        self.subscribers: List[int] = []
        self.writes_installed = 0
        self.writes_discarded = 0
        # At-most-once write processing: clients have one outstanding
        # write, so remembering the last (req, ack) per client suffices to
        # answer retransmissions without re-installing (a re-install after
        # an interleaved competing write would resurrect the old value).
        self._last_write_ack: Dict[int, tuple] = {}

    def subscribe(self, client_id: int) -> None:
        if client_id not in self.subscribers:
            self.subscribers.append(client_id)

    def current_version(self, obj: str) -> PhysicalVersion:
        """The stored version, materializing the initial value on demand."""
        if obj not in self.store:
            self.store[obj] = PhysicalVersion(
                obj, self.initial_value, alpha=0.0, omega=0.0, writer=-1
            )
        version = self.store[obj]
        version.advance_omega(self.local_time())
        return version

    def on_message(self, message: Message) -> None:
        handler = {
            messages.FETCH: self._on_fetch,
            messages.VALIDATE: self._on_validate,
            messages.WRITE: self._on_write,
        }.get(message.kind)
        if handler is None:
            raise ValueError(f"{self!r} cannot handle {message.kind}")
        handler(message)

    def _reply(self, message: Message, kind: str, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload["req"] = message.payload.get("req")
        self.send(message.src, kind, payload, size=messages.size_of(kind))

    def _on_fetch(self, message: Message) -> None:
        obj = message.payload["obj"]
        version = self.current_version(obj)
        self._reply(message, messages.VERSION, {"version": version.copy()})

    def _on_validate(self, message: Message) -> None:
        obj = message.payload["obj"]
        alpha = message.payload["alpha"]
        version = self.current_version(obj)
        if version.alpha == alpha:
            self._reply(
                message, messages.STILL_VALID, {"obj": obj, "omega": version.omega}
            )
        else:
            self._reply(message, messages.VERSION, {"version": version.copy()})

    def _on_write(self, message: Message) -> None:
        incoming: PhysicalVersion = message.payload["version"]
        req = message.payload.get("req")
        remembered = self._last_write_ack.get(message.src)
        if remembered is not None and remembered[0] == req:
            self.send(message.src, messages.WRITE_ACK, dict(remembered[1]),
                      size=messages.size_of(messages.WRITE_ACK))
            return
        # The install instant is the write's effective time: the server
        # re-stamps the version with its own clock, which makes the start
        # times of an object's installed versions monotone.
        install_time = self.local_time()
        current = self.store.get(incoming.obj)
        installed = current is None or install_time > current.alpha
        if installed:
            stored = PhysicalVersion(
                incoming.obj, incoming.value, install_time, install_time,
                incoming.writer,
            )
            self.store[incoming.obj] = stored
            self.writes_installed += 1
            self._propagate(stored, exclude=message.src)
        else:
            # An equally-stamped concurrent write already holds the slot;
            # the loser's writer keeps its value cached locally, which is
            # fine for SC: that client's reads serialize earlier.
            self.writes_discarded += 1
        ack = {
            "obj": incoming.obj,
            "alpha": install_time,
            "installed": installed,
            "true_time": self.sim.now,
            "req": req,
        }
        self._last_write_ack[message.src] = (req, ack)
        self.send(message.src, messages.WRITE_ACK, dict(ack),
                  size=messages.size_of(messages.WRITE_ACK))

    def _propagate(self, version: PhysicalVersion, exclude: int) -> None:
        if self.push_policy is PushPolicy.NONE:
            return
        for client_id in self.subscribers:
            if client_id == exclude:
                continue
            if self.push_policy is PushPolicy.PUSH:
                self.send(
                    client_id,
                    messages.PUSH,
                    {"version": version.copy()},
                    size=messages.size_of(messages.PUSH),
                )
            else:
                self.send(
                    client_id,
                    messages.INVALIDATE,
                    {"obj": version.obj, "alpha": version.alpha},
                    size=messages.size_of(messages.INVALIDATE),
                )


class CausalServer(Node):
    """Authoritative store for the CC/TCC (logical-clock) protocols.

    The server keeps a running *knowledge* vector — the join of every
    timestamp it has seen.  A fetched version's ending time is
    ``alpha join requester_context``: because writes are synchronous and
    each object has a single home server, every write to the object that
    lies in the requester's causal past is already installed here, so the
    current version is valid with respect to the requester's entire
    context.  (Using the server's global knowledge instead would be
    unsound: it contains entries for unrelated clients' activity, which
    makes the ending time spuriously concurrent with later contexts and
    lets a cache serve a value that a causally newer same-object write
    should have superseded.)  The checking time ``beta`` is the server's
    physical now.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        vector_width: int,
        initial_value: Any = 0,
        push_policy: PushPolicy = PushPolicy.NONE,
        clock=None,
        zero_timestamp=None,
    ) -> None:
        super().__init__(node_id, sim, network, clock)
        self.initial_value = initial_value
        self.push_policy = push_policy
        self.vector_width = vector_width
        self.zero_timestamp = (
            zero_timestamp
            if zero_timestamp is not None
            else VectorTimestamp.zero(vector_width)
        )
        self.knowledge = self.zero_timestamp
        self.store: Dict[str, LogicalVersion] = {}
        self.subscribers: List[int] = []
        self.writes_installed = 0
        self.writes_discarded = 0
        self._last_write_ack: Dict[int, tuple] = {}

    def subscribe(self, client_id: int) -> None:
        if client_id not in self.subscribers:
            self.subscribers.append(client_id)

    def current_version(
        self, obj: str, requester_context: Optional[VectorTimestamp] = None
    ) -> LogicalVersion:
        """A *copy* of the stored version, tailored to the requester.

        The stored version's own ending time stays at its start time; the
        reply copy's ending time is ``alpha join requester_context``.
        Accumulating contexts into the stored version would leak one
        client's causal past into another's ending time and break the
        soundness argument above.
        """
        if obj not in self.store:
            zero = self.zero_timestamp
            self.store[obj] = LogicalVersion(
                obj, self.initial_value, alpha=zero, omega=zero, writer=-1,
                beta=0.0,
            )
        stored = self.store[obj]
        stored.advance_beta(self.local_time())
        reply = stored.copy()
        if requester_context is not None:
            reply.advance_omega(requester_context)
        return reply

    def on_message(self, message: Message) -> None:
        handler = {
            messages.FETCH: self._on_fetch,
            messages.VALIDATE: self._on_validate,
            messages.WRITE: self._on_write,
        }.get(message.kind)
        if handler is None:
            raise ValueError(f"{self!r} cannot handle {message.kind}")
        handler(message)

    def _reply(self, message: Message, kind: str, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload["req"] = message.payload.get("req")
        self.send(message.src, kind, payload, size=messages.size_of(kind))

    def _on_fetch(self, message: Message) -> None:
        obj = message.payload["obj"]
        version = self.current_version(obj, message.payload.get("context"))
        self._reply(message, messages.VERSION, {"version": version.copy()})

    def _on_validate(self, message: Message) -> None:
        obj = message.payload["obj"]
        alpha: VectorTimestamp = message.payload["alpha"]
        version = self.current_version(obj, message.payload.get("context"))
        if version.alpha == alpha:
            self._reply(
                message,
                messages.STILL_VALID,
                {"obj": obj, "omega": version.omega, "beta": version.beta},
            )
        else:
            self._reply(message, messages.VERSION, {"version": version.copy()})

    @staticmethod
    def _wins(incoming: LogicalVersion, current: LogicalVersion) -> bool:
        """Does the incoming write supersede the stored one?

        Causally later always wins; causally older (a stale retransmit,
        impossible with synchronous writes) loses.  A *concurrent* incoming
        write wins: each object has a single home server, so arrival order
        is a total install order, and the install instant is the write's
        effective time.  Install-order last-writer-wins keeps the stored
        version the effectively-latest write, which is what makes the TCC
        delta bound hold — if the effectively-older concurrent write could
        stay installed, every future read of it would miss the newer one
        forever, violating Definition 2 by more than the clock precision.
        """
        order = incoming.alpha.compare(current.alpha)
        return order is Ordering.AFTER or order is Ordering.CONCURRENT

    def _on_write(self, message: Message) -> None:
        incoming: LogicalVersion = message.payload["version"]
        req = message.payload.get("req")
        remembered = self._last_write_ack.get(message.src)
        if remembered is not None and remembered[0] == req:
            self.send(message.src, messages.WRITE_ACK, dict(remembered[1]),
                      size=messages.size_of(messages.WRITE_ACK))
            return
        self.knowledge = self.knowledge.join(incoming.alpha)
        current = self.store.get(incoming.obj)
        installed = current is None or self._wins(incoming, current)
        if installed:
            stored = incoming.copy()
            stored.advance_beta(self.local_time())
            self.store[incoming.obj] = stored
            self.writes_installed += 1
            self._propagate(stored, exclude=message.src)
        else:
            self.writes_discarded += 1
        ack = {
            "obj": incoming.obj,
            "installed": installed,
            "beta": self.local_time(),
            "true_time": self.sim.now,
            "req": req,
        }
        self._last_write_ack[message.src] = (req, ack)
        self.send(message.src, messages.WRITE_ACK, dict(ack),
                  size=messages.size_of(messages.WRITE_ACK))

    def _propagate(self, version: LogicalVersion, exclude: int) -> None:
        if self.push_policy is PushPolicy.NONE:
            return
        for client_id in self.subscribers:
            if client_id == exclude:
                continue
            if self.push_policy is PushPolicy.PUSH:
                self.send(
                    client_id,
                    messages.PUSH,
                    {"version": version.copy()},
                    size=messages.size_of(messages.PUSH),
                )
            else:
                self.send(
                    client_id,
                    messages.INVALIDATE,
                    {"obj": version.obj, "alpha": version.alpha},
                    size=messages.size_of(messages.INVALIDATE),
                )
