"""Lifetime-based consistency protocols (Section 5 of the paper)."""

from repro.protocol import messages
from repro.protocol.cache_client import (
    CausalCacheClient,
    StalenessAction,
    TimedCacheClient,
)
from repro.protocol.cluster import VARIANTS, Cluster
from repro.protocol.server import (
    CausalServer,
    ObjectDirectory,
    PhysicalServer,
    PushPolicy,
)
from repro.protocol.stats import ClientStats
from repro.protocol.versions import CacheEntry, LogicalVersion, PhysicalVersion

__all__ = [
    "CacheEntry",
    "CausalCacheClient",
    "CausalServer",
    "ClientStats",
    "Cluster",
    "LogicalVersion",
    "ObjectDirectory",
    "PhysicalServer",
    "PhysicalVersion",
    "PushPolicy",
    "StalenessAction",
    "TimedCacheClient",
    "VARIANTS",
    "messages",
]
