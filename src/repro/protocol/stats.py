"""Per-client protocol statistics for the cost benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ClientStats:
    """Counters a cache client maintains while running a workload.

    * ``fresh_hits`` — reads served from cache with no messages;
    * ``validations`` — if-modified-since round trips (split into
      ``revalidated`` = answered STILL_VALID and ``refreshed`` = answered
      with a new version);
    * ``fetches`` — cold misses (no cached entry at all);
    * ``invalidations`` — cache entries dropped by the Context rules;
    * ``marked_old`` — entries demoted to *old* instead of dropped
      (Section 5.2 optimization);
    * ``pushes``/``push_invalidations`` — server-initiated traffic
      received;
    * ``retries`` — request retransmissions on lossy networks;
    * ``read_latencies`` — per-read completion latencies.

    Staleness is deliberately *not* counted here: it is a ground-truth
    property of the recorded execution, computed by
    :func:`repro.analysis.staleness_report` so the protocol cannot
    misreport itself.
    """

    reads: int = 0
    writes: int = 0
    fresh_hits: int = 0
    validations: int = 0
    revalidated: int = 0
    refreshed: int = 0
    fetches: int = 0
    invalidations: int = 0
    marked_old: int = 0
    pushes: int = 0
    push_invalidations: int = 0
    fetch_check_failures: int = 0
    retries: int = 0
    read_latencies: List[float] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served without any message."""
        return self.fresh_hits / self.reads if self.reads else 0.0

    @property
    def messages_per_read(self) -> float:
        """Round trips per read (validations + fetches, each 2 messages)."""
        if not self.reads:
            return 0.0
        return 2.0 * (self.validations + self.fetches) / self.reads

    @property
    def mean_read_latency(self) -> float:
        if not self.read_latencies:
            return 0.0
        return sum(self.read_latencies) / len(self.read_latencies)

    def merge(self, other: "ClientStats") -> "ClientStats":
        """Aggregate counters across clients (for fleet-level reporting)."""
        merged = ClientStats()
        for name in (
            "reads", "writes", "fresh_hits", "validations", "revalidated",
            "refreshed", "fetches", "invalidations", "marked_old", "pushes",
            "push_invalidations", "fetch_check_failures", "retries",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.read_latencies = self.read_latencies + other.read_latencies
        return merged

    def as_row(self) -> Dict[str, float]:
        """A flat dict for table rendering in benches."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "hit_ratio": round(self.hit_ratio, 4),
            "msgs_per_read": round(self.messages_per_read, 4),
            "validations": self.validations,
            "fetches": self.fetches,
            "invalidations": self.invalidations,
            "retries": self.retries,
            "mean_read_latency": round(self.mean_read_latency, 4),
        }
