"""Per-client protocol statistics — compatibility shim.

:class:`ClientStats` moved down a layer into :mod:`repro.engine.stats`
(the cache engines count into it directly, so the struct belongs below
the drivers).  This module re-exports it under the historical path; new
code should import :mod:`repro.engine.stats`.
"""

from repro.engine.stats import *  # noqa: F401,F403
from repro.engine.stats import ClientStats  # noqa: F401
