"""Message kinds and payload schemas — compatibility shim.

The definitions moved down a layer into :mod:`repro.engine.messages` so
the transport-free engines can use them without importing the protocol
package (whose ``__init__`` imports the sim drivers, which import the
engines — a cycle).  This module re-exports everything under the
historical path; new code should import :mod:`repro.engine.messages`.
"""

from repro.engine.messages import *  # noqa: F401,F403
from repro.engine.messages import size_of  # noqa: F401
