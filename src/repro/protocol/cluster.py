"""Cluster assembly: simulator + network + servers + cache clients.

This is the top-level experiment object: pick a protocol *variant*
(``"sc"``, ``"tsc"``, ``"cc"``, ``"tcc"``), a delta, clock quality, network
latency and policies, then drive client workload processes and harvest the
execution trace plus protocol statistics.

    cluster = Cluster(n_clients=4, variant="tsc", delta=0.5, seed=7)
    cluster.spawn(my_workload)          # one generator per client
    cluster.run(until=60.0)
    history = cluster.history()         # feed to repro.checkers
    print(cluster.aggregate_stats().as_row())
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.clocks.physical import PerfectClock, SynchronizedClock, TimeServer
from repro.core.history import History
from repro.protocol.cache_client import (
    CausalCacheClient,
    StalenessAction,
    TimedCacheClient,
)
from repro.protocol.server import (
    CausalServer,
    ObjectDirectory,
    PhysicalServer,
    PushPolicy,
)
from repro.protocol.stats import ClientStats
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network, UniformLatency
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder, UniqueValueFactory

#: The four protocol variants of Section 5.
VARIANTS = ("sc", "tsc", "cc", "tcc")

#: A workload is a generator function: (cluster, client, rng) -> process.
WorkloadFn = Callable[["Cluster", Any, Any], Generator]


class Cluster:
    """A simulated deployment of the lifetime consistency protocol."""

    def __init__(
        self,
        n_clients: int,
        n_servers: int = 1,
        variant: str = "sc",
        delta: float = math.inf,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        push_policy: PushPolicy = PushPolicy.NONE,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        epsilon: float = 0.0,
        sync_interval: float = 1.0,
        initial_value: Any = 0,
        causal_clock: str = "vector",
        rev_entries: int = 2,
        drop_probability: float = 0.0,
        retry_timeout: Optional[float] = None,
        per_client_delta: Optional[List[float]] = None,
        delta_overrides=None,
        ring=None,
    ) -> None:
        """``causal_clock`` selects the logical clock of the CC/TCC
        variants: ``"vector"`` (exact, default) or ``"rev"`` (the
        constant-size R-entries plausible clock of Torres-Rojas & Ahamad,
        with ``rev_entries`` entries — Section 5.3 allows either; the REV
        variant makes causal consistency approximate, see
        ``benchmarks/bench_plausible_clocks.py``).

        ``per_client_delta`` gives each client its own freshness bound
        (the "multiple consistency levels in one system" idea of Kordale
        & Ahamad [23]: stricter clients pay more traffic, laxer clients
        less, and the shared ordering criterion still holds globally).
        ``delta_overrides`` (object name -> delta) applies the S-DSO [41]
        per-object bounds to every client.

        ``ring`` (a :class:`repro.ring.Ring` whose devices are the server
        ids ``0..n_servers-1``) customizes object placement — weighted
        devices, a different partition power.  Placement in the simulator
        is primary-only: each object keeps a single authoritative server,
        so every consistency argument of the one-server protocol carries
        over unchanged; the ring decides *which* server that is."""
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if causal_clock not in ("vector", "rev"):
            raise ValueError(
                f"causal_clock must be 'vector' or 'rev', got {causal_clock!r}"
            )
        if rev_entries <= 0:
            raise ValueError(f"rev_entries must be positive, got {rev_entries}")
        self.causal_clock = causal_clock
        self.rev_entries = rev_entries
        if variant in ("sc", "cc") and not math.isinf(delta):
            raise ValueError(f"variant {variant!r} takes no delta (use tsc/tcc)")
        if variant in ("tsc", "tcc") and math.isinf(delta) and per_client_delta is None:
            raise ValueError(f"variant {variant!r} needs a finite delta")
        if per_client_delta is not None and len(per_client_delta) != n_clients:
            raise ValueError(
                f"per_client_delta needs {n_clients} entries, "
                f"got {len(per_client_delta)}"
            )
        self._per_client_delta = per_client_delta
        self._delta_overrides = delta_overrides
        if n_clients <= 0 or n_servers <= 0:
            raise ValueError("need at least one client and one server")
        self.variant = variant
        self.delta = delta
        self.epsilon = epsilon
        self._sync_interval = sync_interval
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        if drop_probability > 0.0 and retry_timeout is None:
            raise ValueError(
                "a lossy network (drop_probability > 0) requires retry_timeout, "
                "otherwise dropped requests hang forever"
            )
        self.network = Network(
            self.sim,
            latency_model=latency or UniformLatency(0.01, 0.05),
            rng=self.rngs.stream("network"),
            drop_probability=drop_probability,
        )
        self.recorder = TraceRecorder(initial_value=initial_value)
        self.values = UniqueValueFactory()
        self._time_server = TimeServer(
            self.sim.time_source(),
            max_error=epsilon / 4.0,
            seed=self.rngs.stream("timeserver").getrandbits(32),
        )

        server_ids = list(range(n_servers))
        client_ids = list(range(n_servers, n_servers + n_clients))
        self.directory = ObjectDirectory(server_ids, ring=ring)

        causal = variant in ("cc", "tcc")
        self.servers: List[Any] = []
        for sid in server_ids:
            if causal:
                server = CausalServer(
                    sid, self.sim, self.network, vector_width=n_clients,
                    initial_value=initial_value, push_policy=push_policy,
                    clock=self._make_clock(f"server{sid}"),
                    zero_timestamp=self._zero_timestamp(slot=0),
                )
            else:
                server = PhysicalServer(
                    sid, self.sim, self.network, initial_value=initial_value,
                    push_policy=push_policy, clock=self._make_clock(f"server{sid}"),
                )
            self.servers.append(server)

        self.clients: List[Any] = []
        for slot, cid in enumerate(client_ids):
            client_delta = (
                per_client_delta[slot] if per_client_delta is not None else delta
            )
            if causal:
                client = CausalCacheClient(
                    cid, self.sim, self.network, self.directory,
                    slot=slot, vector_width=n_clients, delta=client_delta,
                    staleness_action=staleness_action, recorder=self.recorder,
                    clock=self._make_clock(f"client{cid}"),
                    lclock=self._logical_clock(slot),
                    zero_timestamp=self._zero_timestamp(slot),
                    retry_timeout=retry_timeout,
                    delta_overrides=delta_overrides,
                )
            else:
                client = TimedCacheClient(
                    cid, self.sim, self.network, self.directory,
                    delta=client_delta,
                    staleness_action=staleness_action, recorder=self.recorder,
                    clock=self._make_clock(f"client{cid}"),
                    retry_timeout=retry_timeout,
                    delta_overrides=delta_overrides,
                )
            self.clients.append(client)
            for server in self.servers:
                server.subscribe(cid)

    def _make_clock(self, name: str):
        """Perfect clocks for epsilon = 0; epsilon-synchronized drifting
        clocks otherwise (pairwise skew bounded by epsilon)."""
        if self.epsilon == 0.0:
            return PerfectClock(self.sim.time_source())
        rng = self.rngs.stream(f"clock:{name}")
        # Budget: server read error (eps/4 each way) + drift over the sync
        # interval must stay within eps/2 per clock.
        drift_budget = (self.epsilon / 4.0) / self.sync_interval_safe()
        drift = rng.uniform(-drift_budget, drift_budget)
        return SynchronizedClock(
            self.sim.time_source(),
            self._time_server,
            drift=drift,
            offset=rng.uniform(-self.epsilon / 4.0, self.epsilon / 4.0),
            sync_interval=self.sync_interval_safe(),
        )

    def sync_interval_safe(self) -> float:
        return getattr(self, "_sync_interval", 1.0)

    def _logical_clock(self, slot: int):
        """The causal variants' logical clock for one client (or None to
        use the client's default exact vector clock)."""
        if self.causal_clock == "vector":
            return None
        from repro.clocks.plausible import REVClock

        return REVClock(slot, self.rev_entries)

    def _zero_timestamp(self, slot: int):
        if self.causal_clock == "vector":
            return None
        from repro.clocks.plausible import REVClock

        return REVClock.zero(slot, self.rev_entries)

    # -- running workloads ---------------------------------------------------

    def spawn(self, workload: WorkloadFn) -> None:
        """Start one instance of ``workload`` per client."""
        for index, client in enumerate(self.clients):
            rng = self.rngs.stream(f"workload:{index}")
            self.sim.process(workload(self, client, rng), name=f"wl{index}")

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.sim.run(until)

    # -- results ---------------------------------------------------------------

    def history(self, validate: bool = True) -> History:
        """The execution trace as a :class:`History` for the checkers."""
        return self.recorder.history(validate=validate)

    def aggregate_stats(self) -> ClientStats:
        """Sum of all clients' protocol statistics."""
        total = ClientStats()
        for client in self.clients:
            total = total.merge(client.stats)
        return total

    def per_client_stats(self) -> Dict[int, ClientStats]:
        return {client.node_id: client.stats for client in self.clients}

    @property
    def message_stats(self):
        return self.network.stats
