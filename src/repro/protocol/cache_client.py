"""Cache clients implementing the lifetime consistency protocols.

:class:`TimedCacheClient` implements the physical-clock protocol of
Sections 5.1-5.2: rules 1-2 give sequential consistency, and rule 3 —
``Context_i := max(t_i - delta, Context_i)`` — upgrades it to TSC(delta).
``delta = math.inf`` disables rule 3 and yields the plain SC protocol;
``delta = 0`` makes every access revalidate (local caches become useless,
the LIN end of Figure 4b).

:class:`CausalCacheClient` implements the logical-clock protocol of
Section 5.3: lifetimes and ``Context_i`` are vector timestamps, and the
TCC upgrade adds the *checking time* ``beta`` — a version whose ``beta``
is older than ``t_i - delta`` must be revalidated before use.

Design notes (see DESIGN.md):

* **Writes are synchronous**: a write completes when the object's server
  acknowledges installation.  This guarantees (a) a site's writes reach
  the server in program order, and (b) any write in a client's causal past
  is installed before anything causally after it executes.  Consequence:
  a version fetched from an object's (single, authoritative) server is
  never older than any write to that object in the client's causal past,
  so a fetched version may always be accepted; when the server-reported
  ending time is behind ``Context_i`` (the cross-server case the paper
  handles by "contacting other servers"), we advance the ending time to
  ``Context_i`` by this argument and count it in
  ``stats.fetch_check_failures``.
* **Invalidate vs mark-old**: the Context rules can either drop a stale
  entry (next access pays a full fetch) or mark it *old* (next access pays
  an if-modified-since validation, Section 5.2's optimization).  The
  ``staleness_action`` knob selects the policy; the ablation bench
  measures the traffic difference.
* Reads complete either immediately (fresh cache hit) or after a
  fetch/validate round trip; the *effective time* recorded in the trace is
  the ground-truth simulation time at completion, and a write's effective
  time is the instant the server installed it — both inside the
  operation's execution interval, as Section 2 requires.
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Any, Callable, Dict, Optional

from repro.clocks.base import Ordering
from repro.clocks.vector import VectorClock, VectorTimestamp
from repro.protocol import messages
from repro.protocol.server import ObjectDirectory
from repro.protocol.stats import ClientStats
from repro.protocol.versions import CacheEntry, LogicalVersion, PhysicalVersion
from repro.sim.kernel import Event, Simulator
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder


class StalenessAction(enum.Enum):
    """What the Context rules do to an entry that fell behind."""

    INVALIDATE = "invalidate"  # drop: next access is a full fetch
    MARK_OLD = "mark-old"  # keep: next access validates (Section 5.2)


class _PendingRead:
    """Bookkeeping for a read awaiting a server reply."""

    __slots__ = ("obj", "event", "issued_at", "was_validation", "resend")

    def __init__(self, obj: str, event: Event, issued_at: float, was_validation: bool):
        self.obj = obj
        self.event = event
        self.issued_at = issued_at
        self.was_validation = was_validation
        self.resend = None  # set by _arm_retry


class _PendingWrite:
    """Bookkeeping for a write awaiting the server's ack."""

    __slots__ = ("obj", "value", "event", "issued_at", "ltime", "resend")

    def __init__(self, obj: str, value: Any, event: Event, issued_at: float, ltime=None):
        self.obj = obj
        self.value = value
        self.event = event
        self.issued_at = issued_at
        self.ltime = ltime
        self.resend = None  # set by _arm_retry


class _RetryMixin:
    """Request retransmission for lossy networks.

    When ``retry_timeout`` is set, every outstanding request re-sends
    itself until a reply arrives.  The same request id is reused, so a
    duplicate reply simply finds no pending entry and is ignored (replies
    are idempotent: VERSION installs are last-writer-wins, STILL_VALID
    only advances ending times, and a duplicated WRITE re-installs the
    same unique value with a later start time, which is indistinguishable
    from the write having taken effect slightly later).
    """

    retry_timeout: Optional[float] = None

    def _arm_retry(self, req: int, resend: Callable[[], None]) -> None:
        pending = self._pending.get(req)
        if pending is not None:
            pending.resend = resend
        if self.retry_timeout is not None:
            self.sim.schedule(self.retry_timeout, self._maybe_retry, req)

    def _maybe_retry(self, req: int) -> None:
        pending = self._pending.get(req)
        if pending is None or pending.resend is None:
            return
        self.stats.retries += 1
        pending.resend()
        self.sim.schedule(self.retry_timeout, self._maybe_retry, req)


class TimedCacheClient(Node, _RetryMixin):
    """Physical-clock lifetime cache: SC when ``delta`` is infinite,
    TSC(delta) otherwise."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        directory: ObjectDirectory,
        delta: float = math.inf,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        recorder: Optional[TraceRecorder] = None,
        clock=None,
        retry_timeout: Optional[float] = None,
        delta_overrides: Optional[Dict[str, float]] = None,
    ) -> None:
        """``delta_overrides`` maps object names to per-object freshness
        bounds — the S-DSO idea of West et al. [41] that the paper's
        Section 4 cites: applications specify *which* objects must be seen
        how quickly.  An override tighter than ``delta`` forces earlier
        revalidation of that object only; looser overrides relax it.
        """
        super().__init__(node_id, sim, network, clock)
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if retry_timeout is not None and retry_timeout <= 0:
            raise ValueError(f"retry_timeout must be positive, got {retry_timeout}")
        if delta_overrides and any(d < 0 for d in delta_overrides.values()):
            raise ValueError("delta overrides must be non-negative")
        self.directory = directory
        self.delta = delta
        self.delta_overrides = dict(delta_overrides or {})
        self.staleness_action = staleness_action
        self.recorder = recorder
        self.retry_timeout = retry_timeout
        self.cache: Dict[str, CacheEntry] = {}
        self.context = 0.0
        self.stats = ClientStats()
        self._requests = itertools.count()
        self._pending: Dict[int, Any] = {}

    def delta_for(self, obj: str) -> float:
        """The freshness bound in force for ``obj``."""
        return self.delta_overrides.get(obj, self.delta)

    # -- public operation API ----------------------------------------------

    def read(self, obj: str) -> Event:
        """Start a read; the returned event succeeds with the value."""
        self.stats.reads += 1
        self._apply_rule3()
        entry = self.cache.get(obj)
        event = self.sim.event()
        if entry is not None and self._usable(entry):
            entry.hits += 1
            self.stats.fresh_hits += 1
            self.stats.read_latencies.append(0.0)
            self._record_read(obj, entry.version.value)
            event.succeed(entry.version.value)
            return event
        req = next(self._requests)
        issued = self.sim.now
        if entry is not None:
            self.stats.validations += 1
            self._pending[req] = _PendingRead(obj, event, issued, True)
            payload = {"obj": obj, "alpha": entry.version.alpha, "req": req}
            send = lambda: self._send_server(obj, messages.VALIDATE, payload)
        else:
            self.stats.fetches += 1
            self._pending[req] = _PendingRead(obj, event, issued, False)
            payload = {"obj": obj, "req": req}
            send = lambda: self._send_server(obj, messages.FETCH, payload)
        send()
        self._arm_retry(req, send)
        return event

    def write(self, obj: str, value: Any) -> Event:
        """Start a write; the returned event succeeds when the server acks."""
        self.stats.writes += 1
        event = self.sim.event()
        req = next(self._requests)
        issue_time = self.local_time()
        self._pending[req] = _PendingWrite(obj, value, event, self.sim.now)
        payload = {
            "version": PhysicalVersion(obj, value, issue_time, issue_time, self.node_id),
            "req": req,
        }
        send = lambda: self._send_server(obj, messages.WRITE, payload)
        send()
        self._arm_retry(req, send)
        return event

    # -- protocol rules -----------------------------------------------------

    def _apply_rule3(self) -> None:
        """Rule 3 (Section 5.2): Context_i := max(t_i - delta, Context_i).

        With per-object overrides the global advance uses the *loosest*
        bound in force (tighter per-object bounds are enforced in
        :meth:`_usable`), so a loose override is not defeated by the
        global context."""
        loosest = self.delta
        if self.delta_overrides:
            loosest = max(loosest, max(self.delta_overrides.values()))
        if math.isinf(loosest):
            return
        self._advance_context(self.local_time() - loosest)

    def _advance_context(self, candidate: float) -> None:
        """Raise Context_i and demote every entry whose ending time fell
        behind it (rule 1's invalidation clause)."""
        if candidate <= self.context:
            return
        self.context = candidate
        for obj, entry in list(self.cache.items()):
            if entry.version.omega < self.context and not entry.old:
                if self.staleness_action is StalenessAction.INVALIDATE:
                    del self.cache[obj]
                    self.stats.invalidations += 1
                else:
                    entry.mark_old()
                    self.stats.marked_old += 1

    def _usable(self, entry: CacheEntry) -> bool:
        """May this cached version be returned with no messages?"""
        if entry.old or entry.version.omega < self.context:
            return False
        bound = self.delta_for(entry.version.obj)
        if not math.isinf(bound):
            if entry.version.omega < self.local_time() - bound:
                return False
        return True

    def usable_snapshot(self) -> Dict[str, PhysicalVersion]:
        """The versions this cache would serve right now, per object."""
        return {
            obj: entry.version
            for obj, entry in self.cache.items()
            if self._usable(entry)
        }

    def snapshot_mutually_consistent(self) -> bool:
        """Section 5.1's cache-consistency invariant: the usable entries'
        lifetimes pairwise overlap (max start time <= min ending time), so
        all served values coexisted at some instant.  Holds by
        construction — ``Context_i`` is the max start time ever seen and
        usable entries have ``omega >= Context_i`` — and is asserted by
        the tests as a protocol invariant."""
        versions = list(self.usable_snapshot().values())
        if not versions:
            return True
        max_alpha = max(v.alpha for v in versions)
        min_omega = min(v.omega for v in versions)
        return max_alpha <= min_omega

    # -- message handling ----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == messages.VERSION:
            self._on_version(message)
        elif message.kind == messages.STILL_VALID:
            self._on_still_valid(message)
        elif message.kind == messages.WRITE_ACK:
            self._on_write_ack(message)
        elif message.kind == messages.PUSH:
            self._on_push(message)
        elif message.kind == messages.INVALIDATE:
            self._on_invalidate(message)
        else:
            raise ValueError(f"{self!r} cannot handle {message.kind}")

    def _on_version(self, message: Message) -> None:
        version: PhysicalVersion = message.payload["version"]
        pending = self._pending.pop(message.payload.get("req"), None)
        self._install_fetched(version)
        if pending is not None:
            if pending.was_validation:
                self.stats.refreshed += 1
            self._complete_read(pending, version.value)

    def _install_fetched(self, version: PhysicalVersion) -> None:
        """Rule 1: Context_i := max(alpha, Context_i); sweep; store."""
        if version.omega < self.context:
            # Cross-server case: sound to accept because writes are
            # synchronous (see module docstring).
            self.stats.fetch_check_failures += 1
            version.advance_omega(self.context)
        self._advance_context(version.alpha)
        entry = self.cache.get(version.obj)
        if entry is None:
            self.cache[version.obj] = CacheEntry(version, fetched_at=self.sim.now)
        else:
            entry.refresh(version, self.sim.now)

    def _on_still_valid(self, message: Message) -> None:
        obj = message.payload["obj"]
        omega = message.payload["omega"]
        pending = self._pending.pop(message.payload.get("req"), None)
        entry = self.cache.get(obj)
        value = None
        if entry is not None:
            entry.version.advance_omega(omega)
            entry.old = False
            value = entry.version.value
        if pending is not None:
            self.stats.revalidated += 1
            self._complete_read(pending, value)

    def _on_write_ack(self, message: Message) -> None:
        pending: Optional[_PendingWrite] = self._pending.pop(
            message.payload["req"], None
        )
        if pending is None:
            return  # duplicate ack from a retransmitted write
        alpha = message.payload["alpha"]
        true_time = message.payload["true_time"]
        version = PhysicalVersion(
            pending.obj, pending.value, alpha, alpha, self.node_id
        )
        # Rule 2: Context_i := X_i_alpha := t (install time).
        self._advance_context(alpha)
        entry = self.cache.get(pending.obj)
        if entry is None:
            self.cache[pending.obj] = CacheEntry(version, fetched_at=self.sim.now)
        else:
            entry.refresh(version, self.sim.now)
        if self.recorder is not None:
            self.recorder.record_write(
                self.node_id, pending.obj, pending.value, true_time,
                start=pending.issued_at, end=self.sim.now,
            )
        pending.event.succeed(alpha)

    def _on_push(self, message: Message) -> None:
        version: PhysicalVersion = message.payload["version"]
        self.stats.pushes += 1
        entry = self.cache.get(version.obj)
        if entry is None or version.alpha > entry.version.alpha:
            self._install_fetched(version)

    def _on_invalidate(self, message: Message) -> None:
        obj = message.payload["obj"]
        alpha = message.payload["alpha"]
        self.stats.push_invalidations += 1
        entry = self.cache.get(obj)
        if entry is not None and entry.version.alpha < alpha:
            if self.staleness_action is StalenessAction.INVALIDATE:
                del self.cache[obj]
                self.stats.invalidations += 1
            else:
                entry.mark_old()
                self.stats.marked_old += 1

    # -- helpers --------------------------------------------------------------

    def _send_server(self, obj: str, kind: str, payload: Dict[str, Any]) -> None:
        self.send(
            self.directory.server_for(obj), kind, payload, size=messages.size_of(kind)
        )

    def _complete_read(self, pending: _PendingRead, value: Any) -> None:
        self.stats.read_latencies.append(self.sim.now - pending.issued_at)
        self._record_read(pending.obj, value, start=pending.issued_at)
        pending.event.succeed(value)

    def _record_read(self, obj: str, value: Any, start: Optional[float] = None) -> None:
        if self.recorder is not None:
            self.recorder.record_read(
                self.node_id, obj, value, self.sim.now,
                start=self.sim.now if start is None else start,
                end=self.sim.now,
            )


class CausalCacheClient(Node, _RetryMixin):
    """Vector-clock lifetime cache: CC when ``delta`` is infinite,
    TCC(delta) otherwise (via the checking time ``beta``)."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        directory: ObjectDirectory,
        slot: int,
        vector_width: int,
        delta: float = math.inf,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        recorder: Optional[TraceRecorder] = None,
        clock=None,
        lclock=None,
        zero_timestamp=None,
        retry_timeout: Optional[float] = None,
        delta_overrides: Optional[Dict[str, float]] = None,
    ) -> None:
        """``lclock``/``zero_timestamp`` override the default exact vector
        clock, e.g. with a constant-size plausible clock
        (:class:`repro.clocks.plausible.REVClock`).  Plausible timestamps
        keep the protocol *safe in the causal direction they report*, but
        their folding can hide a genuine supersession, so causal
        consistency becomes approximate; the bench suite measures the
        violation rate as a function of clock precision.

        ``delta_overrides`` gives per-object freshness bounds (the S-DSO
        idea [41]); see :class:`TimedCacheClient`.
        """
        super().__init__(node_id, sim, network, clock)
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if retry_timeout is not None and retry_timeout <= 0:
            raise ValueError(f"retry_timeout must be positive, got {retry_timeout}")
        if delta_overrides and any(d < 0 for d in delta_overrides.values()):
            raise ValueError("delta overrides must be non-negative")
        self.directory = directory
        self.delta = delta
        self.delta_overrides = dict(delta_overrides or {})
        self.staleness_action = staleness_action
        self.recorder = recorder
        self.retry_timeout = retry_timeout
        self.vclock = lclock if lclock is not None else VectorClock(slot, vector_width)
        self.cache: Dict[str, CacheEntry] = {}
        self.context = (
            zero_timestamp
            if zero_timestamp is not None
            else VectorTimestamp.zero(vector_width)
        )
        self.stats = ClientStats()
        self._requests = itertools.count()
        self._pending: Dict[int, Any] = {}

    # -- public operation API ----------------------------------------------

    def read(self, obj: str) -> Event:
        """Start a read; the returned event succeeds with the value."""
        self.stats.reads += 1
        entry = self.cache.get(obj)
        event = self.sim.event()
        if entry is not None and self._usable(entry):
            entry.hits += 1
            self.stats.fresh_hits += 1
            self.stats.read_latencies.append(0.0)
            self._record_read(obj, entry.version.value)
            event.succeed(entry.version.value)
            return event
        req = next(self._requests)
        issued = self.sim.now
        if entry is not None:
            self.stats.validations += 1
            self._pending[req] = _PendingRead(obj, event, issued, True)
            payload = {
                "obj": obj,
                "alpha": entry.version.alpha,
                "context": self.context,
                "req": req,
            }
            send = lambda: self._send_server(obj, messages.VALIDATE, payload)
        else:
            self.stats.fetches += 1
            self._pending[req] = _PendingRead(obj, event, issued, False)
            payload = {"obj": obj, "context": self.context, "req": req}
            send = lambda: self._send_server(obj, messages.FETCH, payload)
        send()
        self._arm_retry(req, send)
        return event

    def write(self, obj: str, value: Any) -> Event:
        """Start a write; the returned event succeeds when the server acks.

        The write is a local event: the vector clock ticks and the
        version's start time is the new local timestamp (rule 2 adapted to
        logical clocks: ``Context_i := alpha := local logical time``).
        """
        self.stats.writes += 1
        alpha = self.vclock.tick()
        self.context = self.context.join(alpha)
        issue_time = self.local_time()
        version = LogicalVersion(
            obj, value, alpha=alpha, omega=alpha, writer=self.node_id,
            beta=issue_time, birth=issue_time,
        )
        # Local copies advance with the local logical clock and are never
        # invalidated by a local update (Section 5.3).
        for entry in self.cache.values():
            entry.version.advance_omega(alpha)
        entry = self.cache.get(obj)
        if entry is None:
            self.cache[obj] = CacheEntry(version.copy(), fetched_at=self.sim.now)
        else:
            entry.refresh(version.copy(), self.sim.now)
        event = self.sim.event()
        req = next(self._requests)
        self._pending[req] = _PendingWrite(obj, value, event, self.sim.now, ltime=alpha)
        payload = {"version": version, "req": req}
        send = lambda: self._send_server(obj, messages.WRITE, payload)
        send()
        self._arm_retry(req, send)
        return event

    # -- protocol rules -----------------------------------------------------

    def delta_for(self, obj: str) -> float:
        """The freshness bound in force for ``obj``."""
        return self.delta_overrides.get(obj, self.delta)

    def _usable(self, entry: CacheEntry) -> bool:
        """No messages needed iff the entry is not old, its ending time has
        not fallen causally behind Context_i, and (TCC only) its checking
        time is within the object's delta of the local clock."""
        if entry.old:
            return False
        if entry.version.omega_causally_before(self.context):
            return False
        bound = self.delta_for(entry.version.obj)
        if not math.isinf(bound):
            beta = entry.version.beta or 0.0
            if beta < self.local_time() - bound:
                return False
        return True

    def usable_snapshot(self) -> Dict[str, LogicalVersion]:
        """The versions this cache would serve right now, per object."""
        return {
            obj: entry.version
            for obj, entry in self.cache.items()
            if self._usable(entry)
        }

    def snapshot_mutually_consistent(self) -> bool:
        """Section 5.1's invariant under logical lifetimes: no usable
        entry's start time is causally after another's ending time (their
        lifetimes overlap in the causal order, possibly concurrently)."""
        versions = list(self.usable_snapshot().values())
        for a in versions:
            for b in versions:
                if a is b:
                    continue
                if b.omega.compare(a.alpha) is Ordering.BEFORE:
                    return False
        return True

    def _sweep(self) -> None:
        """Invalidate (or mark old) entries causally behind Context_i."""
        for obj, entry in list(self.cache.items()):
            if entry.old:
                continue
            if entry.version.omega_causally_before(self.context):
                if self.staleness_action is StalenessAction.INVALIDATE:
                    del self.cache[obj]
                    self.stats.invalidations += 1
                else:
                    entry.mark_old()
                    self.stats.marked_old += 1

    # -- message handling ----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == messages.VERSION:
            self._on_version(message)
        elif message.kind == messages.STILL_VALID:
            self._on_still_valid(message)
        elif message.kind == messages.WRITE_ACK:
            self._on_write_ack(message)
        elif message.kind == messages.PUSH:
            self._on_push(message)
        elif message.kind == messages.INVALIDATE:
            self._on_invalidate(message)
        else:
            raise ValueError(f"{self!r} cannot handle {message.kind}")

    def _on_version(self, message: Message) -> None:
        version: LogicalVersion = message.payload["version"]
        pending = self._pending.pop(message.payload.get("req"), None)
        self._install_fetched(version)
        if pending is not None:
            if pending.was_validation:
                self.stats.refreshed += 1
            self._complete_read(pending, version.value)

    def _install_fetched(self, version: LogicalVersion) -> None:
        """Rule 1 adapted: Context_i := join(alpha, Context_i); sweep.

        The server already stamped ``omega = alpha join our_context`` (the
        paper's "ending time not causally before Context_i" requirement),
        so the check below only fires for pushes or for contexts that grew
        while the request was in flight; such a version is accepted but
        left with its smaller omega, so the next access revalidates it.
        """
        if version.omega.compare(self.context) is Ordering.BEFORE:
            self.stats.fetch_check_failures += 1
        self.vclock.merge(version.alpha)
        self.context = self.context.join(version.alpha)
        self._sweep()
        entry = self.cache.get(version.obj)
        if entry is None:
            self.cache[version.obj] = CacheEntry(version, fetched_at=self.sim.now)
        else:
            entry.refresh(version, self.sim.now)

    def _on_still_valid(self, message: Message) -> None:
        obj = message.payload["obj"]
        pending = self._pending.pop(message.payload.get("req"), None)
        entry = self.cache.get(obj)
        value = None
        if entry is not None:
            entry.version.advance_omega(message.payload["omega"])
            beta = message.payload.get("beta")
            if beta is not None:
                entry.version.advance_beta(beta)
            entry.old = False
            value = entry.version.value
        if pending is not None:
            self.stats.revalidated += 1
            self._complete_read(pending, value)

    def _on_write_ack(self, message: Message) -> None:
        pending: Optional[_PendingWrite] = self._pending.pop(
            message.payload["req"], None
        )
        if pending is None:
            return  # duplicate ack from a retransmitted write
        true_time = message.payload["true_time"]
        entry = self.cache.get(pending.obj)
        if entry is not None:
            beta = message.payload.get("beta")
            if beta is not None:
                entry.version.advance_beta(beta)
        if self.recorder is not None:
            self.recorder.record_write(
                self.node_id, pending.obj, pending.value, true_time,
                ltime=pending.ltime, start=pending.issued_at, end=self.sim.now,
            )
        pending.event.succeed(None)

    def _on_push(self, message: Message) -> None:
        version: LogicalVersion = message.payload["version"]
        self.stats.pushes += 1
        entry = self.cache.get(version.obj)
        if entry is None or version.alpha.compare(entry.version.alpha) is Ordering.AFTER:
            self._install_fetched(version)

    def _on_invalidate(self, message: Message) -> None:
        obj = message.payload["obj"]
        alpha: VectorTimestamp = message.payload["alpha"]
        self.stats.push_invalidations += 1
        entry = self.cache.get(obj)
        if entry is not None and entry.version.alpha.compare(alpha) is Ordering.BEFORE:
            if self.staleness_action is StalenessAction.INVALIDATE:
                del self.cache[obj]
                self.stats.invalidations += 1
            else:
                entry.mark_old()
                self.stats.marked_old += 1

    # -- helpers --------------------------------------------------------------

    def _send_server(self, obj: str, kind: str, payload: Dict[str, Any]) -> None:
        self.send(
            self.directory.server_for(obj), kind, payload, size=messages.size_of(kind)
        )

    def _complete_read(self, pending: _PendingRead, value: Any) -> None:
        self.stats.read_latencies.append(self.sim.now - pending.issued_at)
        self._record_read(pending.obj, value, start=pending.issued_at)
        pending.event.succeed(value)

    def _record_read(self, obj: str, value: Any, start: Optional[float] = None) -> None:
        if self.recorder is not None:
            self.recorder.record_read(
                self.node_id, obj, value, self.sim.now, ltime=self.vclock.now(),
                start=self.sim.now if start is None else start,
                end=self.sim.now,
            )
