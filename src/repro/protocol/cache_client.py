"""Cache clients implementing the lifetime consistency protocols.

:class:`TimedCacheClient` implements the physical-clock protocol of
Sections 5.1-5.2: rules 1-2 give sequential consistency, and rule 3 —
``Context_i := max(t_i - delta, Context_i)`` — upgrades it to TSC(delta).
``delta = math.inf`` disables rule 3 and yields the plain SC protocol;
``delta = 0`` makes every access revalidate (local caches become useless,
the LIN end of Figure 4b).

:class:`CausalCacheClient` implements the logical-clock protocol of
Section 5.3: lifetimes and ``Context_i`` are vector timestamps, and the
TCC upgrade adds the *checking time* ``beta`` — a version whose ``beta``
is older than ``t_i - delta`` must be revalidated before use.

The protocol rules live in the transport-free cache engines of
:mod:`repro.engine.cache`; the classes here are the *simulator drivers*:
request ids, retransmission, pending-operation events, the trace
recorder, and the translation between simulator messages and engine
calls.  The TCP client (:class:`repro.net.client.NetCacheClient`) drives
the same :class:`~repro.engine.CacheEngine`.

Design notes (see DESIGN.md):

* **Writes are synchronous**: a write completes when the object's server
  acknowledges installation.  This guarantees (a) a site's writes reach
  the server in program order, and (b) any write in a client's causal past
  is installed before anything causally after it executes.  Consequence:
  a version fetched from an object's (single, authoritative) server is
  never older than any write to that object in the client's causal past,
  so a fetched version may always be accepted; when the server-reported
  ending time is behind ``Context_i`` (the cross-server case the paper
  handles by "contacting other servers"), we advance the ending time to
  ``Context_i`` by this argument and count it in
  ``stats.fetch_check_failures``.
* **Invalidate vs mark-old**: the Context rules can either drop a stale
  entry (next access pays a full fetch) or mark it *old* (next access pays
  an if-modified-since validation, Section 5.2's optimization).  The
  ``staleness_action`` knob selects the policy; the ablation bench
  measures the traffic difference.
* Reads complete either immediately (fresh cache hit) or after a
  fetch/validate round trip; the *effective time* recorded in the trace is
  the ground-truth simulation time at completion, and a write's effective
  time is the instant the server installed it — both inside the
  operation's execution interval, as Section 2 requires.
* Writes go to the wire as ``{"obj", "value", "req"}`` scalars (the
  server stamps the install time; a client-side stamp would be
  discarded anyway), matching the TCP wire format.  ``write_many``
  ships several writes in one ``WRITE_BATCH`` frame — the sim stack
  shares the TCP stack's batching now that both drive the same engine.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clocks.vector import VectorClock, VectorTimestamp
from repro.engine import CacheEngine, CausalCacheEngine, StalenessAction  # noqa: F401
from repro.protocol import messages
from repro.protocol.server import ObjectDirectory
from repro.protocol.stats import ClientStats
from repro.protocol.versions import CacheEntry, LogicalVersion, PhysicalVersion
from repro.sim.kernel import Event, Simulator
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder


class _PendingRead:
    """Bookkeeping for a read awaiting a server reply."""

    __slots__ = ("obj", "event", "issued_at", "was_validation", "resend")

    def __init__(self, obj: str, event: Event, issued_at: float, was_validation: bool):
        self.obj = obj
        self.event = event
        self.issued_at = issued_at
        self.was_validation = was_validation
        self.resend = None  # set by _arm_retry


class _PendingWrite:
    """Bookkeeping for a write awaiting the server's ack."""

    __slots__ = ("obj", "value", "event", "issued_at", "ltime", "resend")

    def __init__(self, obj: str, value: Any, event: Event, issued_at: float, ltime=None):
        self.obj = obj
        self.value = value
        self.event = event
        self.issued_at = issued_at
        self.ltime = ltime
        self.resend = None  # set by _arm_retry


class _PendingBatch:
    """Bookkeeping for a write batch awaiting its per-item acks."""

    __slots__ = ("writes", "event", "issued_at", "resend")

    def __init__(
        self, writes: List[Tuple[str, Any]], event: Event, issued_at: float
    ):
        self.writes = writes
        self.event = event
        self.issued_at = issued_at
        self.resend = None  # set by _arm_retry


class _RetryMixin:
    """Request retransmission for lossy networks.

    When ``retry_timeout`` is set, every outstanding request re-sends
    itself until a reply arrives.  The same request id is reused, and
    the server's exactly-once reply cache turns the duplicate into a
    replay of the original reply (same ``alpha``), so a retransmitted
    write is never installed twice — even with several writes
    outstanding, where the old one-deep per-client memo failed.  A
    duplicate *reply* simply finds no pending entry and is ignored.
    """

    retry_timeout: Optional[float] = None

    def _arm_retry(self, req: int, resend: Callable[[], None]) -> None:
        pending = self._pending.get(req)
        if pending is not None:
            pending.resend = resend
        if self.retry_timeout is not None:
            self.sim.schedule(self.retry_timeout, self._maybe_retry, req)

    def _maybe_retry(self, req: int) -> None:
        pending = self._pending.get(req)
        if pending is None or pending.resend is None:
            return
        self.stats.retries += 1
        pending.resend()
        self.sim.schedule(self.retry_timeout, self._maybe_retry, req)


class TimedCacheClient(Node, _RetryMixin):
    """Physical-clock lifetime cache: SC when ``delta`` is infinite,
    TSC(delta) otherwise — the simulator driver over
    :class:`repro.engine.CacheEngine`."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        directory: ObjectDirectory,
        delta: float = math.inf,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        recorder: Optional[TraceRecorder] = None,
        clock=None,
        retry_timeout: Optional[float] = None,
        delta_overrides: Optional[Dict[str, float]] = None,
    ) -> None:
        """``delta_overrides`` maps object names to per-object freshness
        bounds — the S-DSO idea of West et al. [41] that the paper's
        Section 4 cites: applications specify *which* objects must be seen
        how quickly.  An override tighter than ``delta`` forces earlier
        revalidation of that object only; looser overrides relax it.
        """
        super().__init__(node_id, sim, network, clock)
        if retry_timeout is not None and retry_timeout <= 0:
            raise ValueError(f"retry_timeout must be positive, got {retry_timeout}")
        self.directory = directory
        self.recorder = recorder
        self.retry_timeout = retry_timeout
        self.stats = ClientStats()
        self.engine = CacheEngine(
            site_id=node_id, delta=delta, staleness_action=staleness_action,
            delta_overrides=delta_overrides, stats=self.stats,
        )
        self._requests = itertools.count()
        self._pending: Dict[int, Any] = {}

    # -- engine state, exposed under the pre-refactor names --------------------

    @property
    def cache(self) -> Dict[str, CacheEntry]:
        return self.engine.cache

    @property
    def context(self) -> float:
        return self.engine.context

    @context.setter
    def context(self, value: float) -> None:
        self.engine.context = value

    @property
    def delta(self) -> float:
        return self.engine.delta

    @property
    def delta_overrides(self) -> Dict[str, float]:
        return self.engine.delta_overrides

    @property
    def staleness_action(self) -> StalenessAction:
        return self.engine.staleness_action

    def delta_for(self, obj: str) -> float:
        """The freshness bound in force for ``obj``."""
        return self.engine.delta_for(obj)

    def usable_snapshot(self) -> Dict[str, PhysicalVersion]:
        """The versions this cache would serve right now, per object."""
        return self.engine.usable_snapshot(self.local_time())

    def snapshot_mutually_consistent(self) -> bool:
        """Section 5.1's cache-consistency invariant (see
        :meth:`repro.engine.CacheEngine.snapshot_mutually_consistent`)."""
        return self.engine.snapshot_mutually_consistent(self.local_time())

    # -- public operation API ----------------------------------------------

    def read(self, obj: str) -> Event:
        """Start a read; the returned event succeeds with the value."""
        self.stats.reads += 1
        self.engine.rule3(self.local_time())
        decision = self.engine.lookup(obj, self.local_time())
        event = self.sim.event()
        if decision.hit:
            self.stats.read_latencies.append(0.0)
            self._record_read(obj, decision.value)
            event.succeed(decision.value)
            return event
        req = next(self._requests)
        issued = self.sim.now
        if decision.action == "validate":
            self._pending[req] = _PendingRead(obj, event, issued, True)
            payload = {"obj": obj, "alpha": decision.alpha, "req": req}
            send = lambda: self._send_server(obj, messages.VALIDATE, payload)
        else:
            self._pending[req] = _PendingRead(obj, event, issued, False)
            payload = {"obj": obj, "req": req}
            send = lambda: self._send_server(obj, messages.FETCH, payload)
        send()
        self._arm_retry(req, send)
        return event

    def write(self, obj: str, value: Any) -> Event:
        """Start a write; the returned event succeeds when the server acks."""
        self.stats.writes += 1
        event = self.sim.event()
        req = next(self._requests)
        self._pending[req] = _PendingWrite(obj, value, event, self.sim.now)
        payload = {"obj": obj, "value": value, "req": req}
        send = lambda: self._send_server(obj, messages.WRITE, payload)
        send()
        self._arm_retry(req, send)
        return event

    def write_many(self, writes: List[Tuple[str, Any]]) -> Event:
        """Start a batch of writes as one ``WRITE_BATCH`` frame; the
        returned event succeeds with the list of install times.

        One frame, one server visit, per-item acks.  Caveat: the
        simulator's clocks only advance between events, so every item in
        the batch gets the *same* install stamp — batch distinct objects
        (a same-object duplicate inside one frame loses the
        latest-write-wins race).
        """
        if not writes:
            raise ValueError("write_many needs at least one write")
        self.stats.writes += len(writes)
        self.stats.batched_writes += len(writes)
        event = self.sim.event()
        req = next(self._requests)
        self._pending[req] = _PendingBatch(list(writes), event, self.sim.now)
        payload = {
            "writes": [{"obj": obj, "value": value} for obj, value in writes],
            "req": req,
        }
        obj = writes[0][0]  # single-server sim: any object routes the frame
        send = lambda: self._send_server(obj, messages.WRITE_BATCH, payload)
        send()
        self._arm_retry(req, send)
        return event

    # -- message handling ----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == messages.VERSION:
            self._on_version(message)
        elif message.kind == messages.STILL_VALID:
            self._on_still_valid(message)
        elif message.kind == messages.WRITE_ACK:
            self._on_ack(message)
        elif message.kind == messages.WRITE_BATCH_ACK:
            self._on_batch_ack(message)
        elif message.kind == messages.PUSH:
            self._on_push(message)
        elif message.kind == messages.INVALIDATE:
            self._on_invalidate(message)
        else:
            raise ValueError(f"{self!r} cannot handle {message.kind}")

    def _on_version(self, message: Message) -> None:
        version: PhysicalVersion = message.payload["version"]
        pending = self._pending.pop(message.payload.get("req"), None)
        self.engine.install_fetched(version, self.sim.now)
        if pending is not None:
            if pending.was_validation:
                self.stats.refreshed += 1
            self._complete_read(pending, version.value)

    def _on_still_valid(self, message: Message) -> None:
        obj = message.payload["obj"]
        pending = self._pending.pop(message.payload.get("req"), None)
        _, value = self.engine.apply_still_valid(obj, message.payload["omega"])
        if pending is not None:
            self.stats.revalidated += 1
            self._complete_read(pending, value)

    def _on_ack(self, message: Message) -> None:
        pending: Optional[_PendingWrite] = self._pending.pop(
            message.payload["req"], None
        )
        if pending is None:
            return  # duplicate ack from a retransmitted write
        alpha = message.payload["alpha"]
        true_time = message.payload["true_time"]
        self.engine.apply_write_ack(pending.obj, pending.value, alpha, self.sim.now)
        if self.recorder is not None:
            self.recorder.record_write(
                self.node_id, pending.obj, pending.value, true_time,
                start=pending.issued_at, end=self.sim.now,
            )
        pending.event.succeed(alpha)

    def _on_batch_ack(self, message: Message) -> None:
        pending: Optional[_PendingBatch] = self._pending.pop(
            message.payload["req"], None
        )
        if pending is None:
            return  # duplicate ack from a retransmitted batch
        true_time = message.payload["true_time"]
        alphas: List[float] = []
        for (obj, value), ack in zip(pending.writes, message.payload["acks"]):
            alpha = ack["alpha"]
            self.engine.apply_write_ack(obj, value, alpha, self.sim.now)
            if self.recorder is not None:
                self.recorder.record_write(
                    self.node_id, obj, value, true_time,
                    start=pending.issued_at, end=self.sim.now,
                )
            alphas.append(alpha)
        pending.event.succeed(alphas)

    def _on_push(self, message: Message) -> None:
        self.engine.apply_push(message.payload["version"], self.sim.now)

    def _on_invalidate(self, message: Message) -> None:
        self.engine.apply_invalidate(
            message.payload["obj"], message.payload["alpha"]
        )

    # -- helpers --------------------------------------------------------------

    def _send_server(self, obj: str, kind: str, payload: Dict[str, Any]) -> None:
        self.send(
            self.directory.server_for(obj), kind, payload, size=messages.size_of(kind)
        )

    def _complete_read(self, pending: _PendingRead, value: Any) -> None:
        self.stats.read_latencies.append(self.sim.now - pending.issued_at)
        self._record_read(pending.obj, value, start=pending.issued_at)
        pending.event.succeed(value)

    def _record_read(self, obj: str, value: Any, start: Optional[float] = None) -> None:
        if self.recorder is not None:
            self.recorder.record_read(
                self.node_id, obj, value, self.sim.now,
                start=self.sim.now if start is None else start,
                end=self.sim.now,
            )


class CausalCacheClient(Node, _RetryMixin):
    """Vector-clock lifetime cache: CC when ``delta`` is infinite,
    TCC(delta) otherwise (via the checking time ``beta``) — the
    simulator driver over :class:`repro.engine.CausalCacheEngine`."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        directory: ObjectDirectory,
        slot: int,
        vector_width: int,
        delta: float = math.inf,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        recorder: Optional[TraceRecorder] = None,
        clock=None,
        lclock=None,
        zero_timestamp=None,
        retry_timeout: Optional[float] = None,
        delta_overrides: Optional[Dict[str, float]] = None,
    ) -> None:
        """``lclock``/``zero_timestamp`` override the default exact vector
        clock, e.g. with a constant-size plausible clock
        (:class:`repro.clocks.plausible.REVClock`).  Plausible timestamps
        keep the protocol *safe in the causal direction they report*, but
        their folding can hide a genuine supersession, so causal
        consistency becomes approximate; the bench suite measures the
        violation rate as a function of clock precision.

        ``delta_overrides`` gives per-object freshness bounds (the S-DSO
        idea [41]); see :class:`TimedCacheClient`.
        """
        super().__init__(node_id, sim, network, clock)
        if retry_timeout is not None and retry_timeout <= 0:
            raise ValueError(f"retry_timeout must be positive, got {retry_timeout}")
        self.directory = directory
        self.recorder = recorder
        self.retry_timeout = retry_timeout
        self.stats = ClientStats()
        self.engine = CausalCacheEngine(
            site_id=node_id,
            vclock=lclock if lclock is not None else VectorClock(slot, vector_width),
            zero_timestamp=(
                zero_timestamp
                if zero_timestamp is not None
                else VectorTimestamp.zero(vector_width)
            ),
            delta=delta, staleness_action=staleness_action,
            delta_overrides=delta_overrides, stats=self.stats,
        )
        self._requests = itertools.count()
        self._pending: Dict[int, Any] = {}

    # -- engine state, exposed under the pre-refactor names --------------------

    @property
    def cache(self) -> Dict[str, CacheEntry]:
        return self.engine.cache

    @property
    def context(self):
        return self.engine.context

    @context.setter
    def context(self, value) -> None:
        self.engine.context = value

    @property
    def vclock(self):
        return self.engine.vclock

    @property
    def delta(self) -> float:
        return self.engine.delta

    @property
    def delta_overrides(self) -> Dict[str, float]:
        return self.engine.delta_overrides

    @property
    def staleness_action(self) -> StalenessAction:
        return self.engine.staleness_action

    def delta_for(self, obj: str) -> float:
        """The freshness bound in force for ``obj``."""
        return self.engine.delta_for(obj)

    def usable_snapshot(self) -> Dict[str, LogicalVersion]:
        """The versions this cache would serve right now, per object."""
        return self.engine.usable_snapshot(self.local_time())

    def snapshot_mutually_consistent(self) -> bool:
        """Section 5.1's invariant under logical lifetimes (see
        :meth:`repro.engine.CausalCacheEngine.snapshot_mutually_consistent`)."""
        return self.engine.snapshot_mutually_consistent(self.local_time())

    # -- public operation API ----------------------------------------------

    def read(self, obj: str) -> Event:
        """Start a read; the returned event succeeds with the value."""
        self.stats.reads += 1
        decision = self.engine.lookup(obj, self.local_time())
        event = self.sim.event()
        if decision.hit:
            self.stats.read_latencies.append(0.0)
            self._record_read(obj, decision.value)
            event.succeed(decision.value)
            return event
        req = next(self._requests)
        issued = self.sim.now
        if decision.action == "validate":
            self._pending[req] = _PendingRead(obj, event, issued, True)
            payload = {
                "obj": obj,
                "alpha": decision.alpha,
                "context": self.engine.context,
                "req": req,
            }
            send = lambda: self._send_server(obj, messages.VALIDATE, payload)
        else:
            self._pending[req] = _PendingRead(obj, event, issued, False)
            payload = {"obj": obj, "context": self.engine.context, "req": req}
            send = lambda: self._send_server(obj, messages.FETCH, payload)
        send()
        self._arm_retry(req, send)
        return event

    def write(self, obj: str, value: Any) -> Event:
        """Start a write; the returned event succeeds when the server acks.

        The write is a local event: the vector clock ticks and the
        version's start time is the new local timestamp (rule 2 adapted to
        logical clocks: ``Context_i := alpha := local logical time``).
        """
        self.stats.writes += 1
        version = self.engine.local_write(
            obj, value, birth=self.local_time(), fetched_at=self.sim.now
        )
        event = self.sim.event()
        req = next(self._requests)
        self._pending[req] = _PendingWrite(
            obj, value, event, self.sim.now, ltime=version.alpha
        )
        payload = {"version": version, "req": req}
        send = lambda: self._send_server(obj, messages.WRITE, payload)
        send()
        self._arm_retry(req, send)
        return event

    # -- message handling ----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == messages.VERSION:
            self._on_version(message)
        elif message.kind == messages.STILL_VALID:
            self._on_still_valid(message)
        elif message.kind == messages.WRITE_ACK:
            self._on_ack(message)
        elif message.kind == messages.PUSH:
            self._on_push(message)
        elif message.kind == messages.INVALIDATE:
            self._on_invalidate(message)
        else:
            raise ValueError(f"{self!r} cannot handle {message.kind}")

    def _on_version(self, message: Message) -> None:
        version: LogicalVersion = message.payload["version"]
        pending = self._pending.pop(message.payload.get("req"), None)
        self.engine.install_fetched(version, self.sim.now)
        if pending is not None:
            if pending.was_validation:
                self.stats.refreshed += 1
            self._complete_read(pending, version.value)

    def _on_still_valid(self, message: Message) -> None:
        obj = message.payload["obj"]
        pending = self._pending.pop(message.payload.get("req"), None)
        _, value = self.engine.apply_still_valid(
            obj, message.payload["omega"], message.payload.get("beta")
        )
        if pending is not None:
            self.stats.revalidated += 1
            self._complete_read(pending, value)

    def _on_ack(self, message: Message) -> None:
        pending: Optional[_PendingWrite] = self._pending.pop(
            message.payload["req"], None
        )
        if pending is None:
            return  # duplicate ack from a retransmitted write
        true_time = message.payload["true_time"]
        self.engine.apply_write_beta(pending.obj, message.payload.get("beta"))
        if self.recorder is not None:
            self.recorder.record_write(
                self.node_id, pending.obj, pending.value, true_time,
                ltime=pending.ltime, start=pending.issued_at, end=self.sim.now,
            )
        pending.event.succeed(None)

    def _on_push(self, message: Message) -> None:
        self.engine.apply_push(message.payload["version"], self.sim.now)

    def _on_invalidate(self, message: Message) -> None:
        self.engine.apply_invalidate(
            message.payload["obj"], message.payload["alpha"]
        )

    # -- helpers --------------------------------------------------------------

    def _send_server(self, obj: str, kind: str, payload: Dict[str, Any]) -> None:
        self.send(
            self.directory.server_for(obj), kind, payload, size=messages.size_of(kind)
        )

    def _complete_read(self, pending: _PendingRead, value: Any) -> None:
        self.stats.read_latencies.append(self.sim.now - pending.issued_at)
        self._record_read(pending.obj, value, start=pending.issued_at)
        pending.event.succeed(value)

    def _record_read(self, obj: str, value: Any, start: Optional[float] = None) -> None:
        if self.recorder is not None:
            self.recorder.record_read(
                self.node_id, obj, value, self.sim.now, ltime=self.vclock.now(),
                start=self.sim.now if start is None else start,
                end=self.sim.now,
            )
