"""Object versions with lifetimes — compatibility shim.

:class:`PhysicalVersion`, :class:`LogicalVersion` and
:class:`CacheEntry` moved down a layer into
:mod:`repro.engine.versions` (they are the engines' working state, so
they belong below the drivers).  This module re-exports them under the
historical path; new code should import :mod:`repro.engine.versions`.
"""

from repro.engine.versions import *  # noqa: F401,F403
from repro.engine.versions import (  # noqa: F401
    CacheEntry,
    LogicalVersion,
    PhysicalVersion,
)
