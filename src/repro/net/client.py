"""The TCP cache client: the lifetime rules of Sections 5.1-5.2, live.

:class:`NetCacheClient` is the transport twin of the simulator's
``TimedCacheClient`` and of ``repro.sim.aio.AioTimedCacheClient``: all
three drive the same :class:`repro.engine.CacheEngine` — the cache
structure (versions with lifetimes, ``Context_i``, *old* entries) and
every freshness judgement live there; this class owns the socket, the
synchronized clock, request ids, retransmission, and trace recording.

Two freshness modes:

* ``"pull"`` — rule 3 (``Context_i := max(t_i - delta, Context_i)``)
  enforced against the *synchronized* clock; a cached entry whose ending
  time fell behind is revalidated before use.  TSC(delta) holds by the
  protocol's own doing, whatever the network does (losses are repaired
  by retransmission).
* ``"push"`` — the client subscribes to server pushes and trusts them
  for freshness: cached entries are served without a delta check, on the
  assumption that any newer version reaches it within delta.  That
  assumption is exactly what fault injection can break — a push delayed
  beyond delta produces reads the checkers flag as late (the paper's
  observation that delta-causality fails when "late messages are never
  delivered"; cf. ``bench_push_vs_pull``).

Requests carry a request id; the client retransmits after a timeout with
exponential backoff, reusing the id so duplicate replies are recognized
and dropped.  Fault injection (:mod:`repro.net.faults`) attaches to the
client's outbound frames *after* the handshake, so connect/sync always
complete and the workload exercises the faults.

Reads and writes are teed into a :class:`~repro.sim.trace.TraceRecorder`:
reads at the synchronized-clock reading at completion, writes at the
server-reported install time, so a merged multi-client trace lives on the
server's timescale and can be checked offline with
``epsilon = max(client.epsilon_bound)``.
"""

from __future__ import annotations

import asyncio
import itertools
import math
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.engine import CacheEngine
from repro.net.clocksync import SyncedClock
from repro.net.faults import FaultInjector
from repro.net.framing import (
    BUSY,
    BYE,
    CLUSTER_STATE,
    CLUSTER_VIEW,
    ERROR,
    HELLO,
    HELLO_ACK,
    RING_FETCH,
    RING_STATE,
    SYNC,
    SYNC_ACK,
    FrameConnection,
    FrameError,
)
from repro.protocol import messages
from repro.protocol.stats import ClientStats
from repro.protocol.versions import CacheEntry, PhysicalVersion
from repro.sim.trace import TraceRecorder

FRESHNESS_MODES = ("pull", "push")


class NetError(Exception):
    """Base class for client-side transport failures."""


class RequestTimeout(NetError):
    """No reply after all retransmissions — server down or partitioned."""


class ProtocolError(NetError):
    """The server answered with an error frame or nonsense."""


def _version_from(frame: Dict[str, Any]) -> PhysicalVersion:
    return PhysicalVersion(
        str(frame["obj"]), frame["value"],
        float(frame["alpha"]), float(frame["omega"]),
        int(frame.get("writer", -1)),
    )


class NetCacheClient:
    """A timed lifetime cache speaking the framed TCP protocol."""

    def __init__(
        self,
        client_id: int,
        host: str,
        port: int,
        *,
        delta: float = math.inf,
        mode: str = "pull",
        recorder: Optional[TraceRecorder] = None,
        skew: float = 0.0,
        faults: Optional[FaultInjector] = None,
        sync_rounds: int = 5,
        sync_retries: int = 3,
        request_timeout: float = 0.5,
        max_retries: int = 4,
        backoff: float = 2.0,
        clock: Optional[SyncedClock] = None,
        registry: Optional[Any] = None,
        metric_labels: Optional[Dict[str, Any]] = None,
        pipeline_depth: int = 8,
        batch: int = 0,
    ) -> None:
        """``sync_retries`` bounds how often a failed connect/clock-sync
        handshake is redone (fresh connection, capped exponential backoff
        — the :class:`~repro.net.faults` ``_RetryMixin`` pattern at the
        handshake layer) before a clean :class:`NetError` surfaces.

        ``clock`` substitutes a caller-owned :class:`SyncedClock` — the
        :class:`~repro.net.ring_router.RingRouter` passes per-device
        clocks sharing one local timescale so cross-server offsets
        compose (docs/RING.md).

        ``registry`` (a :class:`repro.obs.metrics.Registry`) turns on
        client-side telemetry: the :class:`ClientStats` struct binds as a
        pull collector, request RTTs land in
        ``repro_net_request_rtt_seconds{kind}``, server pushes in
        ``repro_net_push_lag_seconds`` (observed propagation delay
        ``now - alpha`` — the quantity delta bounds), and the NTP
        estimator's offset/error export as gauges.  ``metric_labels``
        adds constant labels (e.g. ``device=<id>``) next to the implicit
        ``site=<client_id>``.

        ``pipeline_depth`` bounds how many requests may be outstanding
        over the one connection at a time (a semaphore; depth 1 is the
        old lockstep behaviour).  A server ``busy`` frame is honored by
        backing off and reissuing under the same request id.

        ``batch`` > 1 turns on write coalescing: concurrent
        :meth:`write` calls are drained into ``write-batch`` frames of
        up to ``batch`` items, amortizing framing and the server's
        log-before-ack fsync.  Each write still receives its own
        server-assigned effective time."""
        if mode not in FRESHNESS_MODES:
            raise ValueError(f"mode must be one of {FRESHNESS_MODES}, got {mode!r}")
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {request_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        if sync_retries < 0:
            raise ValueError(f"sync_retries must be non-negative, got {sync_retries}")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        if batch < 0:
            raise ValueError(f"batch must be non-negative, got {batch}")
        self.client_id = client_id
        self.host = host
        self.port = port
        self.mode = mode
        self.recorder = recorder
        self.faults = faults
        self.sync_rounds = sync_rounds
        self.sync_retries = sync_retries
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.clock = clock if clock is not None else SyncedClock(skew=skew)
        self.stats = ClientStats()
        self.engine = CacheEngine(
            site_id=client_id, delta=delta, stats=self.stats
        )
        self.conn: Optional[FrameConnection] = None
        # Cluster awareness: the highest ring epoch any server frame has
        # carried (0 for a standalone server), a subscriber called on
        # each advance, and the dead-connection latch that makes requests
        # fail fast instead of burning the retransmit ladder against a
        # server that is gone (docs/CLUSTER.md).
        self.server_epoch = 0
        self.on_epoch: Optional[Callable[[int, "NetCacheClient"], None]] = None
        self._conn_lost = False
        self.pipeline_depth = pipeline_depth
        self.batch = batch
        self._requests = itertools.count()
        self._pending: Dict[int, asyncio.Future] = {}
        self._recv_task: Optional[asyncio.Task] = None
        # Pipelining: the semaphore bounds outstanding request ids over
        # the one connection; ids themselves are never reused, so a
        # reply that outlives its request cannot resolve a later future.
        self._issue_slots = asyncio.Semaphore(pipeline_depth)
        # Write coalescing: (obj, value, future, started) tuples drained
        # by one flusher task into write-batch frames.
        self._batch_queue: Deque[Tuple[str, Any, asyncio.Future, float]] = deque()
        self._batch_flusher: Optional[asyncio.Task] = None
        self.registry = registry
        self._rtt = None
        self._push_lag = None
        self._clock_collector = None
        self.pipeline = None
        if registry is not None:
            self._bind_metrics(metric_labels or {})

    # -- engine state, exposed under the pre-refactor names --------------------

    @property
    def cache(self) -> Dict[str, CacheEntry]:
        return self.engine.cache

    @property
    def context(self) -> float:
        return self.engine.context

    @context.setter
    def context(self, value: float) -> None:
        self.engine.context = value

    @property
    def delta(self) -> float:
        return self.engine.delta

    @delta.setter
    def delta(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"delta must be non-negative, got {value}")
        self.engine.delta = value

    def _bind_metrics(self, extra: Dict[str, Any]) -> None:
        from repro.obs.bridge import bind_client_stats
        from repro.obs.metrics import family

        labels = {"site": str(self.client_id)}
        labels.update({k: str(v) for k, v in extra.items()})
        bind_client_stats(self.registry, self.stats, **labels)
        rtt = self.registry.histogram(
            "repro_net_request_rtt_seconds",
            "Request round-trip time as seen by the cache client",
            labels=tuple(labels) + ("kind",),
        )
        # Pre-bound children: the request path does one dict lookup.
        self._rtt = {
            kind: rtt.labels(**labels, kind=kind)
            for kind in (
                messages.FETCH, messages.VALIDATE, messages.WRITE,
                messages.WRITE_BATCH, messages.VALIDATE_BATCH, SYNC,
            )
        }
        self._push_lag = self.registry.histogram(
            "repro_net_push_lag_seconds",
            "Propagation delay of server pushes (receipt time - alpha); "
            "the quantity TSC's delta bounds",
            labels=tuple(labels),
        ).labels(**labels)

        def clock_collector():
            est = self.clock.estimator
            return [
                family("repro_net_clock_error_seconds", "gauge",
                       "NTP estimator error bound (epsilon contribution)",
                       [(labels, est.error_bound)]),
                family("repro_net_clock_offset_seconds", "gauge",
                       "Estimated offset to the server clock",
                       [(labels, est.offset)]),
            ]

        self._clock_collector = self.registry.register_collector(clock_collector)

        from repro.obs.instruments import PipelineInstruments

        self.pipeline = PipelineInstruments(
            self.registry, side="client", labels=labels
        )
        self.pipeline.bind_outstanding(lambda: len(self._pending))
        self.pipeline.bind_queue_depth(lambda: len(self._batch_queue))

    # -- connection lifecycle -------------------------------------------------

    async def connect(self) -> "NetCacheClient":
        """Connect and synchronize; one bad handshake round is not fatal.

        A server that closes mid-sync (restart, accept-queue overflow) is
        retried on a fresh connection with capped exponential backoff;
        only after ``sync_retries + 1`` failed handshakes does a clean
        :class:`NetError` surface.
        """
        wait = 0.05
        for attempt in range(self.sync_retries + 1):
            try:
                await self._handshake()
                break
            except (ConnectionError, FrameError) as exc:
                await self._abandon_connection()
                if attempt == self.sync_retries:
                    raise NetError(
                        f"clock-sync handshake failed after {attempt + 1} "
                        f"attempts: {exc}"
                    ) from exc
                await asyncio.sleep(wait)
                wait = min(wait * self.backoff, 1.0)
        # Faults attach only now: the handshake always completes, the
        # workload runs over the unreliable link.
        self.conn.faults = self.faults
        self._conn_lost = False
        self._recv_task = asyncio.ensure_future(self._recv_loop())
        return self

    async def _handshake(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self.conn = FrameConnection(reader, writer)
        await self.conn.send({
            "kind": HELLO,
            "client_id": self.client_id,
            "subscribe": self.mode == "push",
        })
        ack = await self.conn.recv()
        if ack is None:
            raise ConnectionError("server closed during handshake")
        if ack.get("kind") != HELLO_ACK:
            raise ProtocolError(f"bad handshake reply: {ack!r}")
        self._note_epoch(ack)
        await self._sync_clock(self.sync_rounds)

    async def _abandon_connection(self) -> None:
        if self.conn is not None:
            try:
                await self.conn.close()
            except Exception:
                pass
            self.conn = None

    async def _sync_clock(self, rounds: int) -> None:
        for _ in range(rounds):
            t0 = self.clock.local()
            await self.conn.send({"kind": SYNC, "t0": t0})
            reply = await self.conn.recv()
            t3 = self.clock.local()
            if reply is None:
                raise ConnectionError("server closed during clock sync")
            if reply.get("kind") != SYNC_ACK:
                raise ProtocolError(f"bad sync reply: {reply!r}")
            self.clock.estimator.add_sample(reply["t0"], reply["t1"], reply["t2"], t3)

    async def resync(self, rounds: Optional[int] = None) -> None:
        """Run additional sync exchanges over the live connection."""
        for _ in range(rounds if rounds is not None else self.sync_rounds):
            reply = await self._request({"kind": SYNC, "t0": self.clock.local()})
            t3 = self.clock.local()
            self.clock.estimator.add_sample(reply["t0"], reply["t1"], reply["t2"], t3)

    async def close(self) -> None:
        if self._batch_flusher is not None and not self._batch_flusher.done():
            # Queued writes have futures their callers await: let the
            # flusher drain them before the connection goes away.
            try:
                await self._batch_flusher
            except Exception:
                pass
        if self.conn is not None:
            try:
                await self.conn.send({"kind": BYE})
            except (ConnectionError, FrameError):
                pass
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
            self._recv_task = None
        if self.conn is not None:
            await self.conn.close()
            self.conn = None

    async def __aenter__(self) -> "NetCacheClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- clocks ---------------------------------------------------------------

    def now(self) -> float:
        """The approximately synchronized clock ``t_i`` (server timescale)."""
        return self.clock.now()

    @property
    def epsilon_bound(self) -> float:
        """This client's contribution to Definition 2's ``epsilon``."""
        return self.clock.epsilon_bound

    # -- the lifetime rules (the engine's; thin aliases) -----------------------

    def _advance_context(self, candidate: float) -> None:
        """Rules 1-3's common clause — see
        :meth:`repro.engine.CacheEngine.advance_context`."""
        self.engine.advance_context(candidate)

    def _install(self, version: PhysicalVersion) -> None:
        """Rule 1 — see :meth:`repro.engine.CacheEngine.install_fetched`."""
        self.engine.install_fetched(version, self.now())

    async def read(self, obj: str) -> Any:
        """Read ``obj`` under the mode's freshness rule."""
        self.stats.reads += 1
        if self.mode == "pull":
            # Rule 3, against the synchronized clock (no-op when delta
            # is infinite); push mode trusts the server's pushes.
            self.engine.rule3(self.now())
        # ``now=None``: the per-read delta bound is not re-checked here —
        # pull mode enforces delta through rule 3 alone, push mode
        # through the pushes (see the module docstring).
        decision = self.engine.lookup(obj, None)
        if decision.hit:
            self.stats.read_latencies.append(0.0)
            self._record_read(obj, decision.value, start=self.now())
            return decision.value
        started = self.now()
        if decision.action == "validate":
            reply = await self._request({
                "kind": messages.VALIDATE, "obj": obj, "alpha": decision.alpha,
            })
            if reply.get("kind") == messages.STILL_VALID:
                _, value = self.engine.apply_still_valid(obj, float(reply["omega"]))
                self.stats.revalidated += 1
            elif reply.get("kind") == messages.VERSION:
                version = _version_from(reply)
                self.engine.install_fetched(version, self.now())
                self.stats.refreshed += 1
                value = version.value
            else:
                raise ProtocolError(f"bad validate reply: {reply!r}")
        else:
            reply = await self._request({"kind": messages.FETCH, "obj": obj})
            if reply.get("kind") != messages.VERSION:
                raise ProtocolError(f"bad fetch reply: {reply!r}")
            version = _version_from(reply)
            self.engine.install_fetched(version, self.now())
            value = version.value
        self.stats.read_latencies.append(self.now() - started)
        self._record_read(obj, value, start=started)
        return value

    def _apply_write_ack(
        self, obj: str, value: Any, alpha: float, started: float
    ) -> float:
        """The local half of a completed write: Rule 2, cache install,
        trace record.  Shared by the single, batched, and coalesced
        write paths."""
        self.engine.apply_write_ack(obj, value, alpha, self.now())
        if self.recorder is not None:
            self.recorder.record_write(
                self.client_id, obj, value, alpha, start=started, end=self.now()
            )
        return alpha

    async def write(
        self, obj: str, value: Any, *, req: Optional[int] = None
    ) -> float:
        """Write through; returns the server-assigned effective time.

        ``req`` pins the request id (from :meth:`next_request_id`) so a
        caller-level retry — e.g. the ring's anti-entropy re-push — hits
        the server's reply cache instead of installing a second version.
        A pinned write bypasses coalescing: a batch frame cannot carry a
        per-write id.
        """
        if req is None and self.batch > 1:
            return await self._write_coalesced(obj, value)
        self.stats.writes += 1
        started = self.now()
        reply = await self._request(
            {"kind": messages.WRITE, "obj": obj, "value": value}, req=req
        )
        if reply.get("kind") != messages.WRITE_ACK:
            raise ProtocolError(f"bad write reply: {reply!r}")
        return self._apply_write_ack(obj, value, float(reply["alpha"]), started)

    def next_request_id(self) -> int:
        """Allocate a request id for a pinned :meth:`write` (ids are
        never reused; allocating without sending is safe)."""
        return next(self._requests)

    async def _write_coalesced(self, obj: str, value: Any) -> float:
        """Queue the write for the flusher task; await its own ack."""
        self.stats.writes += 1
        started = self.now()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._batch_queue.append((obj, value, future, started))
        if self._batch_flusher is None or self._batch_flusher.done():
            self._batch_flusher = asyncio.ensure_future(self._flush_batches())
        return await future

    async def _flush_batches(self) -> None:
        """Drain the coalescing queue in write-batch frames of up to
        ``batch`` items.  Writes queued while a frame is in flight form
        the next frame — same-tick writes share one round trip."""
        while self._batch_queue:
            group = [
                self._batch_queue.popleft()
                for _ in range(min(len(self._batch_queue), self.batch))
            ]
            try:
                acks = await self._send_write_batch(
                    [(obj, value) for obj, value, _, _ in group]
                )
            except Exception as exc:
                for _, _, future, _ in group:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (obj, value, future, started), alpha in zip(group, acks):
                self._apply_write_ack(obj, value, alpha, started)
                if not future.done():
                    future.set_result(alpha)

    async def _send_write_batch(
        self, items: List[Tuple[str, Any]]
    ) -> List[float]:
        """One write-batch round trip; returns per-item alphas in order."""
        reply = await self._request({
            "kind": messages.WRITE_BATCH,
            "writes": [{"obj": obj, "value": value} for obj, value in items],
        })
        if reply.get("kind") != messages.WRITE_BATCH_ACK:
            raise ProtocolError(f"bad write-batch reply: {reply!r}")
        acks = reply.get("acks")
        if not isinstance(acks, list) or len(acks) != len(items):
            raise ProtocolError(f"write-batch ack shape mismatch: {reply!r}")
        self.stats.batched_writes += len(items)
        if self.pipeline is not None:
            self.pipeline.on_batch(len(items))
        return [float(ack["alpha"]) for ack in acks]

    async def write_many(self, items: Iterable[Tuple[str, Any]]) -> List[float]:
        """Write several objects in one ``write-batch`` frame; returns
        the server-assigned effective times in item order.  One round
        trip, one server lock acquisition, one WAL fsync — each item
        still gets its own effective time and Rule 2 is applied per ack."""
        pairs = list(items)
        if not pairs:
            return []
        self.stats.writes += len(pairs)
        started = self.now()
        acks = await self._send_write_batch(pairs)
        return [
            self._apply_write_ack(obj, value, alpha, started)
            for (obj, value), alpha in zip(pairs, acks)
        ]

    async def validate_many(self, objs: Iterable[str]) -> Dict[str, Any]:
        """Refresh several objects in one ``validate-batch`` frame;
        returns ``{obj: value}``.

        Objects with a usable cached entry are served locally (and
        counted as fresh hits); the rest go in one frame — cached ones
        as if-modified-since items, cold ones with a null ``alpha`` that
        asks for the full version.  Each result is applied under the
        same lifetime rules as :meth:`read` and recorded as a read."""
        wanted = list(dict.fromkeys(objs))
        if not wanted:
            return {}
        self.stats.reads += len(wanted)
        if self.mode == "pull":
            self.engine.rule3(self.now())  # Rule 3, once for the batch
        out: Dict[str, Any] = {}
        remote: List[Tuple[str, Any]] = []  # (obj, decision)
        for obj in wanted:
            decision = self.engine.lookup(obj, None)
            if decision.hit:
                self.stats.read_latencies.append(0.0)
                self._record_read(obj, decision.value, start=self.now())
                out[obj] = decision.value
            else:
                remote.append((obj, decision))
        if not remote:
            return out
        started = self.now()
        items = [
            {"obj": obj, "alpha": decision.alpha}  # alpha None = cold fetch
            for obj, decision in remote
        ]
        validated = {
            obj for obj, decision in remote if decision.action == "validate"
        }
        reply = await self._request({
            "kind": messages.VALIDATE_BATCH, "items": items,
        })
        if reply.get("kind") != messages.VALIDATE_BATCH_ACK:
            raise ProtocolError(f"bad validate-batch reply: {reply!r}")
        results = reply.get("results")
        if not isinstance(results, list) or len(results) != len(remote):
            raise ProtocolError(f"validate-batch ack shape mismatch: {reply!r}")
        if self.pipeline is not None:
            self.pipeline.on_batch(len(remote))
        for (obj, _), result in zip(remote, results):
            if result.get("kind") == messages.STILL_VALID:
                _, value = self.engine.apply_still_valid(obj, float(result["omega"]))
                self.stats.revalidated += 1
            elif result.get("kind") == messages.VERSION:
                version = _version_from(result)
                self.engine.install_fetched(version, self.now())
                if obj in validated:
                    self.stats.refreshed += 1
                value = version.value
            else:
                raise ProtocolError(f"bad validate-batch item: {result!r}")
            self.stats.read_latencies.append(self.now() - started)
            self._record_read(obj, value, start=started)
            out[obj] = value
        return out

    # -- server-initiated traffic ----------------------------------------------

    def _on_push(self, frame: Dict[str, Any]) -> None:
        version = _version_from(frame)
        if self._push_lag is not None:
            lag = self.now() - version.alpha
            if lag >= 0.0:
                self._push_lag.observe(lag)
        self.engine.apply_push(version, self.now())

    def _on_invalidate(self, frame: Dict[str, Any]) -> None:
        self.engine.apply_invalidate(str(frame["obj"]), float(frame["alpha"]))

    # -- cluster awareness ------------------------------------------------------

    @property
    def connected(self) -> bool:
        """False once the connection is known dead (requests fail fast)."""
        return self.conn is not None and not self._conn_lost

    def _note_epoch(self, frame: Dict[str, Any]) -> None:
        """Track the server's ring epoch from any stamped frame; notify
        the subscriber (the router) on each advance."""
        epoch = frame.get("epoch")
        if epoch is None:
            return
        epoch = int(epoch)
        if epoch <= self.server_epoch:
            return
        self.server_epoch = epoch
        if self.on_epoch is not None:
            try:
                self.on_epoch(epoch, self)
            except Exception:
                pass  # a broken subscriber must not kill the recv loop

    async def fetch_ring(self) -> Tuple[int, Optional[Dict[str, Any]]]:
        """Ask the server for its current ring: ``(epoch, ring dict or
        None)``.  Epoch 0 with no ring means a standalone server."""
        reply = await self._request({"kind": RING_FETCH})
        if reply.get("kind") != RING_STATE:
            raise ProtocolError(f"bad ring-fetch reply: {reply!r}")
        return int(reply.get("epoch", 0)), reply.get("ring")

    async def fetch_cluster_view(self) -> Tuple[int, Optional[Dict[str, Any]]]:
        """Ask the server for its cluster view: ``(epoch, view dict or
        None)`` — ``repro cluster status`` runs on this."""
        reply = await self._request({"kind": CLUSTER_STATE})
        if reply.get("kind") != CLUSTER_VIEW:
            raise ProtocolError(f"bad cluster-state reply: {reply!r}")
        return int(reply.get("epoch", 0)), reply.get("view")

    # -- transport --------------------------------------------------------------

    #: Upper bound on consecutive busy reissues before the request fails
    #: (a saturated-forever server should surface, not spin).
    MAX_BUSY_RETRIES = 256

    async def _request(
        self,
        message: Dict[str, Any],
        timeout: Optional[float] = None,
        req: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Issue a request down the pipeline; retransmit with exponential
        backoff until a reply with the matching id arrives.

        Up to ``pipeline_depth`` requests may be in flight at once (the
        semaphore); ids are never reused, so duplicate and orphan replies
        are recognized and dropped.  A ``busy`` reply means the server
        shed the request *unexecuted*: back off briefly and reissue under
        the same id.  ``req`` pins the id for caller-level idempotent
        retries (the ring's repair path).
        """
        if self.conn is None:
            raise NetError("client is not connected")
        if self._conn_lost:
            # Fail fast: the recv loop saw the connection die.  Burning
            # the full retransmit ladder against a dead server would add
            # seconds to every failover (docs/CLUSTER.md time-to-recover
            # accounting); the caller's replica fallback handles it now.
            raise NetError(f"connection to {self.host}:{self.port} is down")
        if req is None:
            req = next(self._requests)
        message = dict(message, req=req)
        async with self._issue_slots:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending[req] = future
            wait = timeout if timeout is not None else self.request_timeout
            rtt_child = self._rtt.get(message["kind"]) if self._rtt else None
            issued = self.clock.local() if rtt_child is not None else 0.0
            attempt = 0
            busy_retries = 0
            busy_wait = 0.005
            try:
                while True:
                    await self.conn.send(message)
                    try:
                        reply = await asyncio.wait_for(asyncio.shield(future), wait)
                    except asyncio.TimeoutError:
                        if attempt == self.max_retries:
                            raise RequestTimeout(
                                f"no reply to {message['kind']} #{req} after "
                                f"{self.max_retries + 1} attempts"
                            ) from None
                        attempt += 1
                        self.stats.retries += 1
                        wait *= self.backoff
                        continue
                    if reply.get("kind") == BUSY:
                        # Shed unexecuted: same id, fresh future, capped
                        # exponential backoff before the reissue.
                        busy_retries += 1
                        if busy_retries > self.MAX_BUSY_RETRIES:
                            raise RequestTimeout(
                                f"server busy for {message['kind']} #{req} "
                                f"after {busy_retries} reissues"
                            )
                        self.stats.busy += 1
                        if self.pipeline is not None:
                            self.pipeline.on_busy()
                        future = asyncio.get_running_loop().create_future()
                        self._pending[req] = future
                        await asyncio.sleep(busy_wait)
                        busy_wait = min(busy_wait * self.backoff, wait)
                        continue
                    if reply.get("kind") == ERROR:
                        raise ProtocolError(str(reply.get("error")))
                    if rtt_child is not None:
                        rtt_child.observe(self.clock.local() - issued)
                    return reply
            finally:
                self._pending.pop(req, None)
                if not future.done():
                    future.cancel()

    async def _recv_loop(self) -> None:
        try:
            while True:
                frame = await self.conn.recv()
                if frame is None:
                    break
                self._note_epoch(frame)
                req = frame.get("req")
                if req is not None:
                    future = self._pending.get(req)
                    if future is not None and not future.done():
                        future.set_result(frame)
                    continue  # unknown id: duplicate of an answered request
                kind = frame.get("kind")
                if kind == messages.PUSH:
                    self._on_push(frame)
                elif kind == messages.INVALIDATE:
                    self._on_invalidate(frame)
                # anything else without an id is noise; ignore it
        except (FrameError, ConnectionError):
            pass
        finally:
            self._conn_lost = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection lost"))

    # -- tracing -----------------------------------------------------------------

    def _record_read(self, obj: str, value: Any, start: float) -> None:
        if self.recorder is not None:
            now = self.now()
            self.recorder.record_read(
                self.client_id, obj, value, now, start=start, end=now
            )
