"""The authoritative object server, over real TCP.

``asyncio.start_server`` plus the frame codec of
:mod:`repro.net.framing`, speaking the lifetime protocol's message kinds
(:mod:`repro.protocol.messages`):

* ``fetch``    -> ``version``        (cache miss: ship the full object);
* ``validate`` -> ``still-valid`` | ``version``  (if-modified-since by
  start-time comparison — Section 5.2's "avoids the unnecessary sending
  of large objects");
* ``write``    -> ``write-ack``      (synchronous install; the install
  instant on the *server's* clock is the write's effective time);
* ``write-batch`` / ``validate-batch`` -> per-item acks (one lock
  acquisition and one WAL append for the whole frame; every item still
  gets its own effective time);
* ``push`` / ``invalidate``          (server-initiated propagation to
  subscribed clients, per the ``propagation`` policy).

Requests are executed **exactly once**: a per-client LRU reply cache
keyed ``(client_id, req)`` replays answered requests, so a write whose
ack was lost is installed once and every retransmission returns the
original ``alpha``.  ``inflight_limit`` bounds concurrently executing
requests; excess frames are shed *unexecuted* with a ``busy`` reply the
client honors by backing off and reissuing under the same id
(docs/NET_PROTOCOL.md).

Plus the transport handshake: ``hello``/``hello-ack`` and the NTP-style
``sync``/``sync-ack`` exchange of :mod:`repro.net.clocksync`.

Observability: pass a :class:`repro.obs.metrics.Registry` and the server
registers a pull-model collector over its native counters (requests by
kind, propagation fan-out, connection/frame/byte accounting, in-flight
depth) — zero cost on the request path.  ``shutdown()`` drains
gracefully: stop accepting, let in-flight requests finish, flush reply
buffers, send each peer a clean ``bye`` frame, then close; ``healthy``
flips false the moment a drain starts so a ``/healthz`` probe can steer
load away first.

The server's clock is the cluster's time reference: install times
(``alpha``) and validation times (``omega``) are stamped with it, and
clients synchronize to it, so a merged trace lives on one timescale with
the clients' residual sync error as Definition 2's ``epsilon``.

This is the single-server configuration of the paper's Section 5 (one
authoritative server per object; here one server for all objects).  The
``ObjectDirectory`` abstraction in :mod:`repro.protocol.server` is the
sharding seam a multi-server deployment will plug into.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.clocks.rebase import RebasedClock
from repro.net.faults import FaultInjector
from repro.net.framing import (
    BUSY,
    BYE,
    CLUSTER_KINDS,
    CLUSTER_STATE,
    CLUSTER_VIEW,
    ERROR,
    HANDOFF,
    HELLO,
    HELLO_ACK,
    PING,
    PING_ACK,
    PING_REQ,
    PROMOTE,
    PROMOTE_ACK,
    PROTOCOL_VERSION,
    RING_FETCH,
    RING_STATE,
    SYNC,
    SYNC_ACK,
    FrameConnection,
    FrameError,
)
from repro.protocol import messages
from repro.protocol.versions import PhysicalVersion
from repro.sim.trace import TraceRecorder

#: Propagation policies: what the server does after installing a write.
PROPAGATION_POLICIES = ("push", "invalidate", "none")


def version_payload(version: PhysicalVersion) -> Dict[str, Any]:
    """The JSON-scalar fields of a version frame."""
    return {
        "obj": version.obj,
        "value": version.value,
        "alpha": version.alpha,
        "omega": version.omega,
        "writer": version.writer,
    }


class ReplyCache:
    """An LRU of ``(client_id, req) -> reply frame`` — the server half of
    exactly-once request semantics.

    A client retransmits under the *same* request id; looking the id up
    here turns re-execution into replay, so a write whose ack was lost
    is installed once and every retransmission returns the original
    ``alpha`` (each write keeps one effective time ``T(w)``, Definition 1).
    Keyed by ``client_id`` rather than the connection so the replay
    survives a reconnect.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], Dict[str, Any]]" = OrderedDict()

    def get(self, key: Tuple[int, int]) -> Optional[Dict[str, Any]]:
        reply = self._entries.get(key)
        if reply is not None:
            self._entries.move_to_end(key)
        return reply

    def put(self, key: Tuple[int, int], reply: Dict[str, Any]) -> None:
        self._entries[key] = reply
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class NetObjectServer:
    """One authoritative store serving framed TCP clients.

    ``fault_factory`` builds a per-connection
    :class:`~repro.net.faults.FaultInjector` applied to the server's
    *outbound* frames — e.g. delaying only ``push`` frames models slow
    propagation while request/reply traffic stays healthy.

    ``recorder``, when given, tees installed writes into a
    :class:`~repro.sim.trace.TraceRecorder` (server-side ground truth).
    Leave it ``None`` when the clients record their own writes, or the
    merged trace would contain duplicates.

    ``store``, when given, is a :class:`repro.store.DurableStore`:
    :meth:`start` recovers from it before accepting connections (the
    version dict, the restored ``Context``, the resumed timescale, and
    the recovered-*old* marks — see :mod:`repro.store.recovery`), every
    installed write is WAL-logged *before* its acknowledgement, and the
    graceful drain writes a final clean snapshot so the next start
    replays nothing.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        initial_value: Any = 0,
        propagation: str = "push",
        latency: float = 0.0,
        recorder: Optional[TraceRecorder] = None,
        clock: Optional[Callable[[], float]] = None,
        fault_factory: Optional[Callable[[], FaultInjector]] = None,
        registry: Optional[Any] = None,
        metric_labels: Optional[Dict[str, Any]] = None,
        store: Optional[Any] = None,
        inflight_limit: Optional[int] = None,
        reply_cache_size: int = 1024,
    ) -> None:
        if propagation not in PROPAGATION_POLICIES:
            raise ValueError(
                f"propagation must be one of {PROPAGATION_POLICIES}, "
                f"got {propagation!r}"
            )
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if inflight_limit is not None and inflight_limit < 1:
            raise ValueError(
                f"inflight_limit must be >= 1, got {inflight_limit}"
            )
        self.host = host
        self.port = port
        self.initial_value = initial_value
        self.propagation = propagation
        self.latency = latency
        self.recorder = recorder
        self.clock = clock if clock is not None else RebasedClock()
        self.fault_factory = fault_factory
        self.store: Dict[str, PhysicalVersion] = {}
        self.durable = store
        self.recovered: Optional[Any] = None
        self.recovered_old: Set[str] = set()
        self.revalidations = 0
        self.context = 0.0
        # Cluster plumbing (repro.cluster; docs/CLUSTER.md).  ``epoch``
        # is the monotone ring-layout version this server acknowledges;
        # 0 means "no cluster" and keeps every reply epoch-free, so a
        # standalone server's wire traffic is byte-identical to before.
        self.epoch = 0
        self.ring: Optional[Dict[str, Any]] = None  #: serialized Ring of ``epoch``
        self.agent: Optional[Any] = None  #: attached cluster SwimAgent
        self.promotions = 0
        self._lock = asyncio.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[FrameConnection] = set()
        self._subscribers: Dict[FrameConnection, int] = {}
        self.requests = 0
        self.requests_by_kind: Dict[str, int] = {}
        self.connections_accepted = 0
        self.pushes_sent = 0
        self.invalidations_sent = 0
        # Exactly-once machinery: the reply cache replays answered
        # requests; _executing parks a duplicate that races its original
        # (the duplicate awaits the original's reply future).
        self.inflight_limit = inflight_limit
        self.replies = ReplyCache(reply_cache_size)
        self._executing: Dict[Tuple[int, int], asyncio.Future] = {}
        self.dedup_replays = 0
        self.busy_sent = 0
        self.batch_frames = 0
        self.batched_writes = 0
        # Frame/byte totals of connections that already closed; live
        # connections are summed at scrape time.
        self._closed_frames = {"sent": 0, "received": 0}
        self._closed_bytes = {"sent": 0, "received": 0}
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.draining = False
        self.registry = registry
        self.metric_labels = {
            k: str(v) for k, v in (metric_labels or {}).items()
        }
        self._collector = None
        self.pipeline = None
        if registry is not None:
            from repro.obs.bridge import bind_net_server
            from repro.obs.instruments import PipelineInstruments

            self._collector = bind_net_server(registry, self, **self.metric_labels)
            self.pipeline = PipelineInstruments(
                registry, side="server", labels=self.metric_labels
            )
            self.pipeline.bind_outstanding(lambda: self._inflight)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "NetObjectServer":
        if self.durable is not None:
            # Recover before accepting a single connection: state first,
            # then resume the persistent timescale so install times keep
            # increasing across the restart (a fresh RebasedClock would
            # restart at zero and every new write would lose the
            # latest-write-wins race against its own recovered past).
            recovered = self.durable.open()
            self.recovered = recovered
            self.store.update(recovered.objects)
            self.context = recovered.context
            self.recovered_old = set(recovered.old_objects)
            self.clock()  # pin the timescale's zero to server start
            if isinstance(self.clock, RebasedClock):
                self.clock.offset += recovered.resume_time
            # Resume the last acknowledged ring epoch: the server must
            # never answer with an epoch older than one it persisted, or
            # routers would trust a layout the cluster already left.
            self.epoch = max(self.epoch, recovered.ring_epoch)
        else:
            self.clock()  # pin the timescale's zero to server start
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def healthy(self) -> bool:
        """False once a drain has started (wire to ``/healthz``)."""
        return self._server is not None and not self.draining

    def transport_totals(self) -> Dict[str, Dict[str, int]]:
        """Frame and byte totals: closed connections plus live ones."""
        frames = dict(self._closed_frames)
        octets = dict(self._closed_bytes)
        for conn in self._connections:
            frames["sent"] += conn.sent
            frames["received"] += conn.received
            octets["sent"] += conn.bytes_sent
            octets["received"] += conn.bytes_received
        return {"frames": frames, "bytes": octets}

    async def shutdown(self, grace: float = 2.0) -> None:
        """Graceful drain: stop accepting, finish in-flight requests
        (up to ``grace`` seconds), flush replies, say ``bye``, close.

        Safe to call from a signal handler via ``create_task``; a second
        call (or a later :meth:`close`) is a no-op for the parts already
        done.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), grace)
            except asyncio.TimeoutError:
                pass  # grace expired: close anyway, replies may be lost
        if self.durable is not None:
            # Clean-shutdown persistence, before the BYE frames: every
            # acknowledged write fsynced, a final snapshot marked clean —
            # the next start loads it and replays nothing.
            async with self._lock:
                self.durable.close_clean(self.store, self.context, self.clock())
        for conn in list(self._connections):
            try:
                await conn.send({"kind": BYE, "reason": "server shutdown"})
            except (ConnectionError, FrameError):
                pass
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        self._subscribers.clear()
        if self.durable is not None:
            self.durable.close(sync=True)  # no-op after a clean shutdown
        # The collector stays registered: a registry is scoped to one
        # deployment/run, and post-run snapshots must still carry the
        # server's final counters.  Unregister explicitly for reuse:
        #     registry.unregister_collector(server._collector)

    async def __aenter__(self) -> "NetObjectServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        faults = self.fault_factory() if self.fault_factory is not None else None
        conn = FrameConnection(reader, writer, faults=faults)
        self._connections.add(conn)
        self.connections_accepted += 1
        try:
            hello = await conn.recv()
            if hello is None or hello.get("kind") != HELLO:
                await conn.send({"kind": ERROR, "error": "expected hello"})
                return
            client_id = int(hello.get("client_id", -1))
            await conn.send(self._stamped({
                "kind": HELLO_ACK,
                "protocol": PROTOCOL_VERSION,
                "server_time": self.clock(),
                "propagation": self.propagation,
            }))
            if hello.get("subscribe"):
                self._subscribers[conn] = client_id
            tasks: Set[asyncio.Task] = set()
            try:
                while True:
                    frame = await conn.recv()
                    if frame is None or frame.get("kind") == BYE:
                        break
                    if frame.get("kind") == SYNC:
                        # Serve sync inline: the exchange measures the
                        # genuine transport; task scheduling would add
                        # noise to (t2 - t1).
                        await self._on_sync(conn, frame)
                        continue
                    if frame.get("kind") in CLUSTER_KINDS:
                        # Control plane: like SYNC, outside the
                        # exactly-once data plane (no dedup, no busy
                        # shedding — a shed probe would read as a dead
                        # server), but as a task so a slow indirect
                        # probe or handoff never blocks this loop.
                        task = asyncio.ensure_future(
                            self._on_cluster(conn, frame)
                        )
                        tasks.add(task)
                        task.add_done_callback(tasks.discard)
                        continue
                    # One task per frame: pipelined requests on a single
                    # connection overlap; replies carry request ids, so
                    # their order does not matter.
                    task = asyncio.ensure_future(
                        self._dispatch(conn, client_id, frame)
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
            finally:
                if tasks:
                    await asyncio.gather(*list(tasks), return_exceptions=True)
        except (FrameError, ConnectionError):
            pass  # corrupt or vanished peer: drop the connection
        finally:
            self._subscribers.pop(conn, None)
            self._connections.discard(conn)
            self._closed_frames["sent"] += conn.sent
            self._closed_frames["received"] += conn.received
            self._closed_bytes["sent"] += conn.bytes_sent
            self._closed_bytes["received"] += conn.bytes_received
            await conn.close()

    async def _on_sync(
        self, conn: FrameConnection, frame: Dict[str, Any]
    ) -> None:
        # No artificial latency here: the sync exchange measures the
        # genuine transport, and (t2 - t1) excludes server time anyway.
        # Never cached/deduped either — a replayed timestamp would
        # poison the client's NTP estimator.  The request id is echoed
        # so a pipelined resync() can match the reply.
        self.requests_by_kind[SYNC] = self.requests_by_kind.get(SYNC, 0) + 1
        t1 = self.clock()
        await conn.send({
            "kind": SYNC_ACK, "req": frame.get("req"),
            "t0": frame.get("t0"), "t1": t1, "t2": self.clock(),
        })

    # -- the cluster control plane (repro.cluster; docs/CLUSTER.md) -----------

    def _stamped(self, reply: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp a reply with this server's ring epoch — the staleness
        signal routers act on.  Epoch 0 (standalone server) stamps
        nothing, keeping the legacy wire format byte-identical."""
        if self.epoch <= 0 or "epoch" in reply:
            return reply
        return {**reply, "epoch": self.epoch}

    def set_ring(self, ring_dict: Dict[str, Any], *, persist: bool = True) -> bool:
        """Adopt a serialized ring iff its epoch is not behind ours;
        persists the acknowledged epoch into ``meta.json`` so a restart
        never resumes trusting a layout the cluster moved past."""
        epoch = int(ring_dict.get("epoch", 0))
        if epoch < self.epoch or (epoch == self.epoch and self.ring is not None):
            return False
        self.ring = dict(ring_dict)
        self.epoch = epoch
        if persist and self.durable is not None:
            self.durable.save_epoch(epoch)
        return True

    async def promote(self, bound: float) -> Dict[str, Any]:
        """Become write authority for partitions a dead primary held.

        The paper's single-authority argument, in the exact shape of
        store recovery (:mod:`repro.store.recovery`) with the *detection
        bound* playing Δ: the new primary cannot know what the dead one
        acknowledged during the last ``bound`` seconds, so

        1. ``Context := max(known, t_promote − bound)`` — it never
           claims a context older than its blind window allows;
        2. every version whose checking time predates ``t_promote −
           bound`` is marked **old** and re-proved on first touch by
           :meth:`_current` (each re-proof counts a revalidation).

        Versions the dying primary acknowledged but never replicated
        are surfaced by its WAL at merge time (``history_from_wal``),
        which is what the failover checker test verifies.
        """
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        async with self._lock:
            t_promote = self.clock()
            floor = t_promote - bound
            self.context = max(self.context, floor)
            marked = {
                obj for obj, version in self.store.items()
                if version.omega < floor
            }
            self.recovered_old |= marked
            self.promotions += 1
            return {
                "t": t_promote, "context": self.context, "old": len(marked),
            }

    async def _on_cluster(
        self, conn: FrameConnection, frame: Dict[str, Any]
    ) -> None:
        kind = str(frame.get("kind"))
        self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1
        req = frame.get("req")
        if kind == RING_FETCH:
            await conn.send({
                "kind": RING_STATE, "req": req,
                "epoch": self.epoch, "ring": self.ring,
            })
            return
        if kind == CLUSTER_STATE:
            view = None
            if self.agent is not None:
                view = self.agent.view.as_dict()
            await conn.send({
                "kind": CLUSTER_VIEW, "req": req,
                "epoch": self.epoch, "view": view,
            })
            return
        if kind == PROMOTE:
            ring = frame.get("ring")
            if isinstance(ring, dict):
                self.set_ring(ring)
            outcome = await self.promote(float(frame.get("bound", 0.0)))
            if self.agent is not None:
                self.agent.on_promoted(frame, outcome)
            await conn.send({
                "kind": PROMOTE_ACK, "req": req,
                "epoch": self.epoch, **outcome,
            })
            return
        if self.agent is not None and kind in (PING, PING_REQ, HANDOFF):
            await self.agent.on_frame(conn, frame)
            return
        if kind == PING:
            # No agent attached: still answer — a bare server is alive.
            await conn.send(self._stamped({"kind": PING_ACK, "req": req}))
            return
        await conn.send({
            "kind": ERROR, "req": req,
            "error": f"no cluster agent attached for {kind!r}",
        })

    async def abort(self) -> None:
        """Crash simulation: vanish mid-flight — no BYE, no clean
        snapshot, no drain.  Buffered WAL records are flushed first
        (log-before-ack means every *acknowledged* write already had its
        append; the flush models it having reached the disk, which a
        real SIGKILL — covered by the CI shell smoke — also guarantees
        under ``fsync=always``).  What remains is exactly what a crashed
        process leaves: a WAL suffix and a stale snapshot.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        self._subscribers.clear()
        if self.durable is not None:
            try:
                self.durable.flush()
            finally:
                self.durable.close(sync=False)

    async def _dispatch(
        self, conn: FrameConnection, client_id: int, frame: Dict[str, Any]
    ) -> None:
        kind = str(frame.get("kind"))
        self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1
        req = frame.get("req")
        key: Optional[Tuple[int, int]] = None
        if req is not None and kind in messages.DEDUP_KINDS:
            key = (client_id, int(req))
            cached = self.replies.get(key)
            if cached is not None:
                # A retransmission of an answered request: replay the
                # original reply (same alpha), execute nothing.
                self.dedup_replays += 1
                await conn.send(self._stamped(cached))
                return
            original = self._executing.get(key)
            if original is not None:
                # The retransmission raced its original, which is still
                # executing: wait for that reply and replay it.
                self.dedup_replays += 1
                try:
                    reply = await asyncio.shield(original)
                except (asyncio.CancelledError, Exception):
                    return  # original died unexecuted; a later retry re-runs
                await conn.send(self._stamped(reply))
                return
        if self.inflight_limit is not None and self._inflight >= self.inflight_limit:
            # Shed *unexecuted*: the client backs off and reissues under
            # the same id, so no exactly-once state is created here.
            self.busy_sent += 1
            if self.pipeline is not None:
                self.pipeline.on_busy()
            await conn.send({"kind": BUSY, "req": req})
            return
        self._inflight += 1
        self._idle.clear()
        if key is not None:
            self._executing[key] = asyncio.get_running_loop().create_future()
        try:
            if self.latency:
                await asyncio.sleep(self.latency)
            reply, installed = await self._execute(client_id, frame, kind)
            # Cache before sending: if the ack is lost on a dying
            # connection, the retransmit (possibly after a reconnect)
            # must still replay rather than re-execute.
            if key is not None and reply.get("kind") != ERROR:
                self.replies.put(key, reply)
                original = self._executing.pop(key)
                if not original.done():
                    original.set_result(reply)
            # Stamp at send time, not in the cache: the epoch may have
            # advanced between execution and a much later replay, and the
            # retransmitting router deserves the *current* epoch.
            await conn.send(self._stamped(reply))
            for version in installed:
                if self.recorder is not None:
                    self.recorder.record_write(
                        client_id, version.obj, version.value, version.alpha
                    )
                await self._propagate(conn, version)
        finally:
            waiter = self._executing.pop(key, None) if key is not None else None
            if waiter is not None and not waiter.done():
                waiter.cancel()
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _execute(
        self, client_id: int, frame: Dict[str, Any], kind: str
    ) -> Tuple[Dict[str, Any], List[PhysicalVersion]]:
        """Run one request; returns ``(reply, installed versions)``.
        Side effects happen exactly once — replays never reach here."""
        if kind == messages.FETCH:
            return await self._on_fetch(frame), []
        if kind == messages.VALIDATE:
            return await self._on_validate(frame), []
        if kind == messages.WRITE:
            return await self._on_write(client_id, frame)
        if kind == messages.WRITE_BATCH:
            return await self._on_write_batch(client_id, frame)
        if kind == messages.VALIDATE_BATCH:
            return await self._on_validate_batch(frame), []
        return {
            "kind": ERROR,
            "error": f"unknown message kind {kind!r}",
            "req": frame.get("req"),
        }, []

    # -- the lifetime protocol, server side ------------------------------------

    def _current(self, obj: str) -> PhysicalVersion:
        """The stored version, its ending time advanced to "now" (the
        server has just observed it to still be current)."""
        if obj not in self.store:
            self.store[obj] = PhysicalVersion(
                obj, self.initial_value, alpha=0.0, omega=0.0, writer=-1
            )
        version = self.store[obj]
        if obj in self.recovered_old:
            # Recovered-old version, first touch since the restart: the
            # server is the object's single write authority and every
            # acknowledged write was WAL-logged before its ack, so the
            # replay was complete and nothing changed during the blind
            # window — this touch re-proves the version current and the
            # advance below becomes its new checking time.
            self.recovered_old.discard(obj)
            self.revalidations += 1
            if self.durable is not None and self.durable.instruments is not None:
                self.durable.instruments.on_revalidation()
        version.advance_omega(self.clock())
        return version

    async def _on_fetch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            self.requests += 1
            version = self._current(str(frame["obj"])).copy()
        return {
            "kind": messages.VERSION, "req": frame.get("req"),
            **version_payload(version),
        }

    def _validate_result(self, obj: str, alpha: Any) -> Dict[str, Any]:
        """One if-modified-since judgement (caller holds the lock)."""
        version = self._current(obj)
        if version.alpha == alpha:
            return {
                "kind": messages.STILL_VALID, "obj": obj, "omega": version.omega,
            }
        return {"kind": messages.VERSION, **version_payload(version.copy())}

    async def _on_validate(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            self.requests += 1
            reply = self._validate_result(str(frame["obj"]), frame.get("alpha"))
        reply["req"] = frame.get("req")
        return reply

    def _install(
        self, obj: str, value: Any, client_id: int
    ) -> PhysicalVersion:
        """Stamp and install one write (caller holds the lock; the WAL
        append is the caller's, so batches can amortize it)."""
        install_time = self.clock()
        version = PhysicalVersion(obj, value, install_time, install_time, client_id)
        current = self.store.get(obj)
        if current is None or install_time > current.alpha:
            self.store[obj] = version.copy()
            self.context = max(self.context, install_time)
            self.recovered_old.discard(obj)  # overwritten, not stale
        return version

    async def _on_write(
        self, client_id: int, frame: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[PhysicalVersion]]:
        obj = str(frame["obj"])
        value = frame["value"]
        async with self._lock:
            self.requests += 1
            version = self._install(obj, value, client_id)
            if self.durable is not None:
                # Log before the ack leaves this block: an acknowledged
                # write is always in the WAL, which is what makes the
                # recovery replay complete.
                self.durable.log_write(version)
                self.durable.maybe_snapshot(
                    self.store, self.context, version.alpha
                )
        reply = {
            "kind": messages.WRITE_ACK, "req": frame.get("req"),
            "obj": obj, "alpha": version.alpha,
        }
        return reply, [version]

    async def _on_write_batch(
        self, client_id: int, frame: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[PhysicalVersion]]:
        """Install a batch of writes under one lock acquisition and one
        WAL append (one fsync under ``fsync=always``); per-item acks in
        item order.  Each item still gets its own strictly-later install
        time from the monotone clock — batching amortizes cost, it does
        not merge effective times."""
        writes = frame.get("writes")
        if not isinstance(writes, list) or not writes:
            return {
                "kind": ERROR, "req": frame.get("req"),
                "error": "write-batch needs a non-empty 'writes' list",
            }, []
        self.batch_frames += 1
        self.batched_writes += len(writes)
        if self.pipeline is not None:
            self.pipeline.on_batch(len(writes))
        installed: List[PhysicalVersion] = []
        async with self._lock:
            self.requests += len(writes)
            for item in writes:
                installed.append(
                    self._install(str(item["obj"]), item["value"], client_id)
                )
            if self.durable is not None:
                self.durable.log_writes(installed)
                self.durable.maybe_snapshot(
                    self.store, self.context, installed[-1].alpha
                )
        reply = {
            "kind": messages.WRITE_BATCH_ACK, "req": frame.get("req"),
            "acks": [{"obj": v.obj, "alpha": v.alpha} for v in installed],
        }
        return reply, installed

    async def _on_validate_batch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Judge a batch of validations under one lock acquisition; a
        null ``alpha`` always ships the full version (bulk refresh)."""
        items = frame.get("items")
        if not isinstance(items, list) or not items:
            return {
                "kind": ERROR, "req": frame.get("req"),
                "error": "validate-batch needs a non-empty 'items' list",
            }
        self.batch_frames += 1
        if self.pipeline is not None:
            self.pipeline.on_batch(len(items))
        async with self._lock:
            self.requests += len(items)
            results = [
                self._validate_result(str(item["obj"]), item.get("alpha"))
                for item in items
            ]
        return {
            "kind": messages.VALIDATE_BATCH_ACK, "req": frame.get("req"),
            "results": results,
        }

    async def _propagate(
        self, writer_conn: FrameConnection, version: PhysicalVersion
    ) -> None:
        """Server-initiated propagation to every other subscriber."""
        if self.propagation == "none":
            return
        if self.propagation == "push":
            frame = {"kind": messages.PUSH, **version_payload(version)}
        else:
            frame = {
                "kind": messages.INVALIDATE,
                "obj": version.obj, "alpha": version.alpha,
            }
        for conn in list(self._subscribers):
            if conn is writer_conn:
                continue
            try:
                await conn.send(frame)
            except ConnectionError:
                continue
            if self.propagation == "push":
                self.pushes_sent += 1
            else:
                self.invalidations_sent += 1
