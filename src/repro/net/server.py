"""The authoritative object server, over real TCP.

``asyncio.start_server`` plus the frame codec of
:mod:`repro.net.framing`, speaking the lifetime protocol's message kinds
(:mod:`repro.protocol.messages`):

* ``fetch``    -> ``version``        (cache miss: ship the full object);
* ``validate`` -> ``still-valid`` | ``version``  (if-modified-since by
  start-time comparison — Section 5.2's "avoids the unnecessary sending
  of large objects");
* ``write``    -> ``write-ack``      (synchronous install; the install
  instant on the *server's* clock is the write's effective time);
* ``write-batch`` / ``validate-batch`` -> per-item acks (one lock
  acquisition and one WAL append for the whole frame; every item still
  gets its own effective time);
* ``push`` / ``invalidate``          (server-initiated propagation to
  subscribed clients, per the ``propagation`` policy).

The protocol itself — install logic, currency checks, the exactly-once
reply cache, ring-epoch adoption, the promotion rule — lives in the
transport-free :class:`repro.engine.ServerEngine`; this class is the TCP
*driver*: it owns the sockets, the asyncio lock, the in-flight
accounting and busy shedding, the durable store, and the propagation
fan-out, and turns each :class:`~repro.engine.effects.EngineResult` into
wire effects in order (WAL append, reply, pushes).  The simulator's
``PhysicalServer`` drives the *same* engine, which is what the
conformance suite asserts.

Requests are executed **exactly once**: a per-client LRU reply cache
keyed ``(client_id, req)`` replays answered requests, so a write whose
ack was lost is installed once and every retransmission returns the
original ``alpha``.  ``inflight_limit`` bounds concurrently executing
requests; excess frames are shed *unexecuted* with a ``busy`` reply the
client honors by backing off and reissuing under the same id
(docs/NET_PROTOCOL.md).

Plus the transport handshake: ``hello``/``hello-ack`` and the NTP-style
``sync``/``sync-ack`` exchange of :mod:`repro.net.clocksync`.

Observability: pass a :class:`repro.obs.metrics.Registry` and the server
registers a pull-model collector over its native counters (requests by
kind, propagation fan-out, connection/frame/byte accounting, in-flight
depth) — zero cost on the request path.  ``shutdown()`` drains
gracefully: stop accepting, let in-flight requests finish, flush reply
buffers, send each peer a clean ``bye`` frame, then close; ``healthy``
flips false the moment a drain starts so a ``/healthz`` probe can steer
load away first.

The server's clock is the cluster's time reference: install times
(``alpha``) and validation times (``omega``) are stamped with it, and
clients synchronize to it, so a merged trace lives on one timescale with
the clients' residual sync error as Definition 2's ``epsilon``.

This is the single-server configuration of the paper's Section 5 (one
authoritative server per object; here one server for all objects).  The
``ObjectDirectory`` abstraction in :mod:`repro.protocol.server` is the
sharding seam a multi-server deployment will plug into.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.clocks.rebase import RebasedClock
from repro.engine import ReplyCache, ServerEngine, version_payload  # noqa: F401
from repro.engine.effects import EngineResult
from repro.net.faults import FaultInjector
from repro.net.framing import (
    BUSY,
    BYE,
    CLUSTER_KINDS,
    CLUSTER_STATE,
    CLUSTER_VIEW,
    ERROR,
    HANDOFF,
    HELLO,
    HELLO_ACK,
    PING,
    PING_ACK,
    PING_REQ,
    PROMOTE,
    PROMOTE_ACK,
    PROTOCOL_VERSION,
    RING_FETCH,
    RING_STATE,
    SYNC,
    SYNC_ACK,
    FrameConnection,
    FrameError,
)
from repro.protocol import messages
from repro.protocol.versions import PhysicalVersion
from repro.sim.trace import TraceRecorder

#: Propagation policies: what the server does after installing a write.
PROPAGATION_POLICIES = ("push", "invalidate", "none")


class NetObjectServer:
    """One authoritative store serving framed TCP clients.

    ``fault_factory`` builds a per-connection
    :class:`~repro.net.faults.FaultInjector` applied to the server's
    *outbound* frames — e.g. delaying only ``push`` frames models slow
    propagation while request/reply traffic stays healthy.

    ``recorder``, when given, tees installed writes into a
    :class:`~repro.sim.trace.TraceRecorder` (server-side ground truth).
    Leave it ``None`` when the clients record their own writes, or the
    merged trace would contain duplicates.

    ``store``, when given, is a :class:`repro.store.DurableStore`:
    :meth:`start` recovers from it before accepting connections (the
    version dict, the restored ``Context``, the resumed timescale, and
    the recovered-*old* marks — see :mod:`repro.store.recovery`), every
    installed write is WAL-logged *before* its acknowledgement, and the
    graceful drain writes a final clean snapshot so the next start
    replays nothing.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        initial_value: Any = 0,
        propagation: str = "push",
        latency: float = 0.0,
        recorder: Optional[TraceRecorder] = None,
        clock: Optional[Callable[[], float]] = None,
        fault_factory: Optional[Callable[[], FaultInjector]] = None,
        registry: Optional[Any] = None,
        metric_labels: Optional[Dict[str, Any]] = None,
        store: Optional[Any] = None,
        inflight_limit: Optional[int] = None,
        reply_cache_size: int = 1024,
    ) -> None:
        if propagation not in PROPAGATION_POLICIES:
            raise ValueError(
                f"propagation must be one of {PROPAGATION_POLICIES}, "
                f"got {propagation!r}"
            )
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if inflight_limit is not None and inflight_limit < 1:
            raise ValueError(
                f"inflight_limit must be >= 1, got {inflight_limit}"
            )
        self.host = host
        self.port = port
        self.initial_value = initial_value
        self.propagation = propagation
        self.latency = latency
        self.recorder = recorder
        self.clock = clock if clock is not None else RebasedClock()
        self.fault_factory = fault_factory
        self.engine = ServerEngine(
            self.clock, initial_value=initial_value,
            reply_cache_size=reply_cache_size,
        )
        self.durable = store
        self.recovered: Optional[Any] = None
        self.agent: Optional[Any] = None  #: attached cluster SwimAgent
        if store is not None:
            self.engine.on_revalidation = self._on_store_revalidation
        self._lock = asyncio.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[FrameConnection] = set()
        self._subscribers: Dict[FrameConnection, int] = {}
        self.requests_by_kind: Dict[str, int] = {}
        self.connections_accepted = 0
        self.pushes_sent = 0
        self.invalidations_sent = 0
        # Exactly-once machinery: the engine's reply cache replays
        # answered requests; _executing parks a duplicate that races its
        # original (the duplicate awaits the original's reply future).
        self.inflight_limit = inflight_limit
        self._executing: Dict[Tuple[int, int], asyncio.Future] = {}
        self.busy_sent = 0
        # Frame/byte totals of connections that already closed; live
        # connections are summed at scrape time.
        self._closed_frames = {"sent": 0, "received": 0}
        self._closed_bytes = {"sent": 0, "received": 0}
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.draining = False
        self.registry = registry
        self.metric_labels = {
            k: str(v) for k, v in (metric_labels or {}).items()
        }
        self._collector = None
        self.pipeline = None
        if registry is not None:
            from repro.obs.bridge import bind_net_server
            from repro.obs.instruments import PipelineInstruments

            self._collector = bind_net_server(registry, self, **self.metric_labels)
            self.pipeline = PipelineInstruments(
                registry, side="server", labels=self.metric_labels
            )
            self.pipeline.bind_outstanding(lambda: self._inflight)

    def _on_store_revalidation(self) -> None:
        if self.durable is not None and self.durable.instruments is not None:
            self.durable.instruments.on_revalidation()

    # -- engine state, exposed under the pre-refactor names --------------------

    @property
    def store(self) -> Dict[str, PhysicalVersion]:
        return self.engine.store

    @property
    def context(self) -> float:
        return self.engine.context

    @context.setter
    def context(self, value: float) -> None:
        self.engine.context = value

    @property
    def recovered_old(self) -> Set[str]:
        return self.engine.recovered_old

    @recovered_old.setter
    def recovered_old(self, value: Set[str]) -> None:
        self.engine.recovered_old = value

    @property
    def revalidations(self) -> int:
        return self.engine.revalidations

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        self.engine.epoch = value

    @property
    def ring(self) -> Optional[Dict[str, Any]]:
        return self.engine.ring

    @property
    def promotions(self) -> int:
        return self.engine.promotions

    @property
    def requests(self) -> int:
        return self.engine.requests

    @property
    def replies(self) -> ReplyCache:
        return self.engine.replies

    @property
    def dedup_replays(self) -> int:
        return self.engine.dedup_replays

    @property
    def batch_frames(self) -> int:
        return self.engine.batch_frames

    @property
    def batched_writes(self) -> int:
        return self.engine.batched_writes

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "NetObjectServer":
        if self.durable is not None:
            # Recover before accepting a single connection: state first,
            # then resume the persistent timescale so install times keep
            # increasing across the restart (a fresh RebasedClock would
            # restart at zero and every new write would lose the
            # latest-write-wins race against its own recovered past).
            recovered = self.durable.open()
            self.recovered = recovered
            self.engine.store.update(recovered.objects)
            self.engine.context = recovered.context
            self.engine.recovered_old = set(recovered.old_objects)
            self.clock()  # pin the timescale's zero to server start
            if isinstance(self.clock, RebasedClock):
                self.clock.offset += recovered.resume_time
            # Resume the last acknowledged ring epoch: the server must
            # never answer with an epoch older than one it persisted, or
            # routers would trust a layout the cluster already left.
            self.engine.epoch = max(self.engine.epoch, recovered.ring_epoch)
        else:
            self.clock()  # pin the timescale's zero to server start
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def healthy(self) -> bool:
        """False once a drain has started (wire to ``/healthz``)."""
        return self._server is not None and not self.draining

    def transport_totals(self) -> Dict[str, Dict[str, int]]:
        """Frame and byte totals: closed connections plus live ones."""
        frames = dict(self._closed_frames)
        octets = dict(self._closed_bytes)
        for conn in self._connections:
            frames["sent"] += conn.sent
            frames["received"] += conn.received
            octets["sent"] += conn.bytes_sent
            octets["received"] += conn.bytes_received
        return {"frames": frames, "bytes": octets}

    async def shutdown(self, grace: float = 2.0) -> None:
        """Graceful drain: stop accepting, finish in-flight requests
        (up to ``grace`` seconds), flush replies, say ``bye``, close.

        Safe to call from a signal handler via ``create_task``; a second
        call (or a later :meth:`close`) is a no-op for the parts already
        done.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), grace)
            except asyncio.TimeoutError:
                pass  # grace expired: close anyway, replies may be lost
        if self.durable is not None:
            # Clean-shutdown persistence, before the BYE frames: every
            # acknowledged write fsynced, a final snapshot marked clean —
            # the next start loads it and replays nothing.
            async with self._lock:
                self.durable.close_clean(
                    self.engine.store, self.engine.context, self.clock()
                )
        for conn in list(self._connections):
            try:
                await conn.send({"kind": BYE, "reason": "server shutdown"})
            except (ConnectionError, FrameError):
                pass
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        self._subscribers.clear()
        if self.durable is not None:
            self.durable.close(sync=True)  # no-op after a clean shutdown
        # The collector stays registered: a registry is scoped to one
        # deployment/run, and post-run snapshots must still carry the
        # server's final counters.  Unregister explicitly for reuse:
        #     registry.unregister_collector(server._collector)

    async def __aenter__(self) -> "NetObjectServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        faults = self.fault_factory() if self.fault_factory is not None else None
        conn = FrameConnection(reader, writer, faults=faults)
        self._connections.add(conn)
        self.connections_accepted += 1
        try:
            hello = await conn.recv()
            if hello is None or hello.get("kind") != HELLO:
                await conn.send({"kind": ERROR, "error": "expected hello"})
                return
            client_id = int(hello.get("client_id", -1))
            await conn.send(self._stamped({
                "kind": HELLO_ACK,
                "protocol": PROTOCOL_VERSION,
                "server_time": self.clock(),
                "propagation": self.propagation,
            }))
            if hello.get("subscribe"):
                self._subscribers[conn] = client_id
            tasks: Set[asyncio.Task] = set()
            try:
                while True:
                    frame = await conn.recv()
                    if frame is None or frame.get("kind") == BYE:
                        break
                    if frame.get("kind") == SYNC:
                        # Serve sync inline: the exchange measures the
                        # genuine transport; task scheduling would add
                        # noise to (t2 - t1).
                        await self._on_sync(conn, frame)
                        continue
                    if frame.get("kind") in CLUSTER_KINDS:
                        # Control plane: like SYNC, outside the
                        # exactly-once data plane (no dedup, no busy
                        # shedding — a shed probe would read as a dead
                        # server), but as a task so a slow indirect
                        # probe or handoff never blocks this loop.
                        task = asyncio.ensure_future(
                            self._on_cluster(conn, frame)
                        )
                        tasks.add(task)
                        task.add_done_callback(tasks.discard)
                        continue
                    # One task per frame: pipelined requests on a single
                    # connection overlap; replies carry request ids, so
                    # their order does not matter.
                    task = asyncio.ensure_future(
                        self._dispatch(conn, client_id, frame)
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
            finally:
                if tasks:
                    await asyncio.gather(*list(tasks), return_exceptions=True)
        except (FrameError, ConnectionError):
            pass  # corrupt or vanished peer: drop the connection
        finally:
            self._subscribers.pop(conn, None)
            self._connections.discard(conn)
            self._closed_frames["sent"] += conn.sent
            self._closed_frames["received"] += conn.received
            self._closed_bytes["sent"] += conn.bytes_sent
            self._closed_bytes["received"] += conn.bytes_received
            await conn.close()

    async def _on_sync(
        self, conn: FrameConnection, frame: Dict[str, Any]
    ) -> None:
        # No artificial latency here: the sync exchange measures the
        # genuine transport, and (t2 - t1) excludes server time anyway.
        # Never cached/deduped either — a replayed timestamp would
        # poison the client's NTP estimator.  The request id is echoed
        # so a pipelined resync() can match the reply.
        self.requests_by_kind[SYNC] = self.requests_by_kind.get(SYNC, 0) + 1
        t1 = self.clock()
        await conn.send({
            "kind": SYNC_ACK, "req": frame.get("req"),
            "t0": frame.get("t0"), "t1": t1, "t2": self.clock(),
        })

    # -- the cluster control plane (repro.cluster; docs/CLUSTER.md) -----------

    def _stamped(self, reply: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp a reply with this server's ring epoch at send time."""
        return self.engine.stamp(reply)

    def set_ring(self, ring_dict: Dict[str, Any], *, persist: bool = True) -> bool:
        """Adopt a serialized ring iff its epoch is not behind ours;
        persists the acknowledged epoch into ``meta.json`` so a restart
        never resumes trusting a layout the cluster moved past."""
        adopted = self.engine.adopt_ring(ring_dict)
        if adopted and persist and self.durable is not None:
            self.durable.save_epoch(self.engine.epoch)
        return adopted

    async def promote(self, bound: float) -> Dict[str, Any]:
        """Become write authority for partitions a dead primary held —
        the engine's promotion rule (store recovery with the detection
        bound playing Δ; see :meth:`repro.engine.ServerEngine.promote`),
        run under the server lock."""
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        async with self._lock:
            return self.engine.promote(bound)

    async def _on_cluster(
        self, conn: FrameConnection, frame: Dict[str, Any]
    ) -> None:
        kind = str(frame.get("kind"))
        self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1
        req = frame.get("req")
        if kind == RING_FETCH:
            await conn.send({
                "kind": RING_STATE, "req": req,
                "epoch": self.engine.epoch, "ring": self.engine.ring,
            })
            return
        if kind == CLUSTER_STATE:
            view = None
            if self.agent is not None:
                view = self.agent.view.as_dict()
            await conn.send({
                "kind": CLUSTER_VIEW, "req": req,
                "epoch": self.engine.epoch, "view": view,
            })
            return
        if kind == PROMOTE:
            ring = frame.get("ring")
            if isinstance(ring, dict):
                self.set_ring(ring)
            outcome = await self.promote(float(frame.get("bound", 0.0)))
            if self.agent is not None:
                self.agent.on_promoted(frame, outcome)
            await conn.send({
                "kind": PROMOTE_ACK, "req": req,
                "epoch": self.engine.epoch, **outcome,
            })
            return
        if self.agent is not None and kind in (PING, PING_REQ, HANDOFF):
            await self.agent.on_frame(conn, frame)
            return
        if kind == PING:
            # No agent attached: still answer — a bare server is alive.
            await conn.send(self._stamped({"kind": PING_ACK, "req": req}))
            return
        await conn.send({
            "kind": ERROR, "req": req,
            "error": f"no cluster agent attached for {kind!r}",
        })

    async def abort(self) -> None:
        """Crash simulation: vanish mid-flight — no BYE, no clean
        snapshot, no drain.  Buffered WAL records are flushed first
        (log-before-ack means every *acknowledged* write already had its
        append; the flush models it having reached the disk, which a
        real SIGKILL — covered by the CI shell smoke — also guarantees
        under ``fsync=always``).  What remains is exactly what a crashed
        process leaves: a WAL suffix and a stale snapshot.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        self._subscribers.clear()
        if self.durable is not None:
            try:
                self.durable.flush()
            finally:
                self.durable.close(sync=False)

    async def _dispatch(
        self, conn: FrameConnection, client_id: int, frame: Dict[str, Any]
    ) -> None:
        kind = str(frame.get("kind"))
        self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1
        req = frame.get("req")
        key = self.engine.dedup_key(client_id, frame)
        if key is not None:
            cached = self.engine.replay(key)
            if cached is not None:
                # A retransmission of an answered request: replay the
                # original reply (same alpha), execute nothing.
                await conn.send(self._stamped(cached))
                return
            original = self._executing.get(key)
            if original is not None:
                # The retransmission raced its original, which is still
                # executing: wait for that reply and replay it.
                self.engine.dedup_replays += 1
                try:
                    reply = await asyncio.shield(original)
                except (asyncio.CancelledError, Exception):
                    return  # original died unexecuted; a later retry re-runs
                await conn.send(self._stamped(reply))
                return
        if self.inflight_limit is not None and self._inflight >= self.inflight_limit:
            # Shed *unexecuted*: the client backs off and reissues under
            # the same id, so no exactly-once state is created here.
            self.busy_sent += 1
            if self.pipeline is not None:
                self.pipeline.on_busy()
            await conn.send({"kind": BUSY, "req": req})
            return
        self._inflight += 1
        self._idle.clear()
        if key is not None:
            self._executing[key] = asyncio.get_running_loop().create_future()
        try:
            if self.latency:
                await asyncio.sleep(self.latency)
            result = await self._execute(client_id, frame)
            reply = result.reply
            # The engine cached the reply before we send: if the ack is
            # lost on a dying connection, the retransmit (possibly after
            # a reconnect) still replays rather than re-executes.
            if key is not None and reply.get("kind") != ERROR:
                original = self._executing.pop(key)
                if not original.done():
                    original.set_result(reply)
            # Stamp at send time, not in the cache: the epoch may have
            # advanced between execution and a much later replay, and the
            # retransmitting router deserves the *current* epoch.
            await conn.send(self._stamped(reply))
            for version in result.installed:
                if self.recorder is not None:
                    self.recorder.record_write(
                        client_id, version.obj, version.value, version.alpha
                    )
                await self._propagate(conn, version)
        finally:
            waiter = self._executing.pop(key, None) if key is not None else None
            if waiter is not None and not waiter.done():
                waiter.cancel()
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _execute(self, client_id: int, frame: Dict[str, Any]) -> EngineResult:
        """Run one request through the engine under the server lock,
        carrying out its durability effect (log before the ack leaves
        the lock: an acknowledged write is always in the WAL, which is
        what makes the recovery replay complete — batches amortize the
        append and its fsync)."""
        async with self._lock:
            result = self.engine.execute(client_id, frame)
            if self.durable is not None and result.wal:
                if len(result.wal) == 1:
                    self.durable.log_write(result.wal[0])
                else:
                    self.durable.log_writes(result.wal)
                self.durable.maybe_snapshot(
                    self.engine.store, self.engine.context, result.wal[-1].alpha
                )
        if self.pipeline is not None:
            kind = result.reply.get("kind")
            if kind == messages.WRITE_BATCH_ACK:
                self.pipeline.on_batch(len(result.reply["acks"]))
            elif kind == messages.VALIDATE_BATCH_ACK:
                self.pipeline.on_batch(len(result.reply["results"]))
        return result

    async def _propagate(
        self, writer_conn: FrameConnection, version: PhysicalVersion
    ) -> None:
        """Server-initiated propagation to every other subscriber."""
        if self.propagation == "none":
            return
        if self.propagation == "push":
            frame = {"kind": messages.PUSH, **version_payload(version)}
        else:
            frame = {
                "kind": messages.INVALIDATE,
                "obj": version.obj, "alpha": version.alpha,
            }
        for conn in list(self._subscribers):
            if conn is writer_conn:
                continue
            try:
                await conn.send(frame)
            except ConnectionError:
                continue
            if self.propagation == "push":
                self.pushes_sent += 1
            else:
                self.invalidations_sent += 1
