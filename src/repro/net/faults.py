"""Fault injection for the real-transport cluster.

The deterministic simulator injects loss and latency inside
:mod:`repro.sim.network`; this is the live counterpart, applied at the
frame layer of a :class:`repro.net.framing.FrameConnection`.  A
:class:`FaultInjector` decides, per outbound frame, how many copies are
delivered and with what extra delay:

* **delay/jitter** — every delivered copy waits ``delay + U(0, jitter)``
  seconds (on top of real network latency);
* **drop** — a copy is lost with probability ``drop_probability``
  (the client repairs losses by retransmission with exponential
  backoff, mirroring ``_RetryMixin`` in the simulator protocol);
* **duplicate** — with probability ``duplicate_probability`` a frame is
  delivered twice (replies are idempotent, duplicates are ignored by
  request id);
* **partition** — while partitioned, *nothing* is delivered, until
  :meth:`FaultInjector.heal` is called.  A partition may be
  **asymmetric**: ``partition("out")`` severs only this side's outbound
  frames and ``partition("in")`` only what it *receives* — the half-open
  link that defeats naive heartbeats (the peer is alive and serving
  others, but its acks never arrive), which is exactly the case SWIM's
  indirect ping-req probing exists to disambiguate (docs/CLUSTER.md).

``kinds`` restricts the injector to specific message kinds — e.g.
delaying only ``push`` frames models slow server-initiated propagation
while request/reply traffic stays healthy, which is exactly the regime
where the paper's delta bound breaks for push designs (cf.
``bench_push_vs_pull``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional


@dataclass
class FaultConfig:
    """Declarative description of an unreliable link."""

    delay: float = 0.0
    jitter: float = 0.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")
        for name in ("drop_probability", "duplicate_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")


@dataclass
class FaultStats:
    planned: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    dropped_inbound: int = 0


#: Legal ``direction`` arguments of :meth:`FaultInjector.partition`.
PARTITION_DIRECTIONS = ("both", "out", "in")


class FaultInjector:
    """Samples a delivery plan for each outbound frame.

    :meth:`plan` returns the list of per-copy delays (possibly empty:
    the frame was dropped or the link is partitioned).  The injector is
    intentionally stateless between frames apart from its RNG, so one
    instance may serve a whole connection.
    """

    def __init__(
        self,
        config: FaultConfig,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self.config = config
        self.kinds: Optional[FrozenSet[str]] = (
            frozenset(kinds) if kinds is not None else None
        )
        self.rng = random.Random(config.seed)
        self.stats = FaultStats()
        self._cut: FrozenSet[str] = frozenset()

    # -- partition control ---------------------------------------------------

    @property
    def partitioned(self) -> bool:
        """True while any direction is severed."""
        return bool(self._cut)

    @property
    def cut_directions(self) -> FrozenSet[str]:
        """The severed directions: subset of ``{"out", "in"}``."""
        return self._cut

    def partition(self, direction: str = "both") -> None:
        """Sever the link: affected frames are silently dropped.

        ``direction`` is ``"both"`` (the classic full partition),
        ``"out"`` (only frames *sent* through this injector are lost) or
        ``"in"`` (only frames *received* by the connection this injector
        is attached to are lost — the half-open link).  Directions
        accumulate: ``partition("out")`` then ``partition("in")`` equals
        ``partition("both")``; :meth:`heal` clears all of them.
        """
        if direction not in PARTITION_DIRECTIONS:
            raise ValueError(
                f"direction must be one of {PARTITION_DIRECTIONS}, "
                f"got {direction!r}"
            )
        add = {"out", "in"} if direction == "both" else {direction}
        self._cut = frozenset(self._cut | add)

    def heal(self) -> None:
        """Restore the link (every severed direction)."""
        self._cut = frozenset()

    def drops_inbound(self, kind: str) -> bool:
        """Whether an arriving frame of ``kind`` is lost to an inbound
        partition (consulted by :meth:`FrameConnection.recv`).  Like the
        outbound check, a partition severs *every* kind, ignoring this
        injector's kind filter."""
        if "in" not in self._cut:
            return False
        self.stats.dropped_inbound += 1
        return True

    # -- the per-frame decision ----------------------------------------------

    def applies_to(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def _sample_delay(self) -> float:
        cfg = self.config
        if cfg.jitter:
            return cfg.delay + self.rng.uniform(0.0, cfg.jitter)
        return cfg.delay

    def plan(self, kind: str) -> List[float]:
        """Delays of the copies to deliver for one frame of ``kind``."""
        # A partition severs the link for *every* frame, including kinds
        # outside this injector's filter — check it before the kind filter.
        if "out" in self._cut:
            self.stats.planned += 1
            self.stats.dropped += 1
            return []
        if not self.applies_to(kind):
            return [0.0]
        self.stats.planned += 1
        cfg = self.config
        copies = 1
        if cfg.duplicate_probability and self.rng.random() < cfg.duplicate_probability:
            copies = 2
            self.stats.duplicated += 1
        delays: List[float] = []
        for _ in range(copies):
            if cfg.drop_probability and self.rng.random() < cfg.drop_probability:
                self.stats.dropped += 1
                continue
            delay = self._sample_delay()
            if delay > 0:
                self.stats.delayed += 1
            delays.append(delay)
        return delays
