"""Client-side ring routing for the TCP lifetime protocol.

A :class:`RingRouter` is one *site* of a multi-server deployment: it
holds one :class:`~repro.net.client.NetCacheClient` connection per ring
device, routes every operation to the owning device(s) via a
:class:`~repro.ring.placement.ReplicatedPlacement`, and records the
site's trace on a single reference timescale.

**Clocks.** Every server stamps times with its own clock; a merged
multi-server trace needs one timescale.  All of a router's per-device
clients share one *local* clock (a :class:`RebasedClock`, optionally
skewed), so each device's NTP-estimated offset maps the shared local
clock onto that device's timescale.  Device timescales then compose
through the local clock: a stamp ``t`` from device ``d`` rebases onto
the *reference* device (the lowest device id) as::

    t_ref = t + (offset_ref - offset_d)

with worst-case error ``err_d + err_ref`` (each estimate contributes
its own NTP error bound).  The router's :attr:`epsilon_bound` is
therefore ``2 * (err_ref + max_d err_d)`` — the epsilon a merged trace
must be checked with (Definition 2's pairwise precision, now across
server clocks as well as client clocks; see docs/RING.md).

**Placement.** Writes fan out W-of-N through the per-device clients
(the primary's ack is the write's effective time); reads route
primary-first with replica fallback; failed fan-out copies are queued
for delta-bounded anti-entropy (:meth:`start_anti_entropy`).  Reads are
guarded: serving a read from a device outside the object's replica set
is a routing bug, counted in ``off_ring_reads`` and asserted zero by
the acceptance tests.
"""

from __future__ import annotations

import asyncio
import logging
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.clocks.rebase import RebasedClock
from repro.net.client import NetCacheClient, NetError
from repro.net.clocksync import SyncedClock
from repro.net.faults import FaultInjector
from repro.protocol.stats import ClientStats
from repro.ring.placement import PlacementError, ReplicatedPlacement
from repro.ring.ring import Ring
from repro.sim.trace import TraceRecorder

READ_POLICIES = ("primary", "spread")

logger = logging.getLogger(__name__)


@dataclass
class RouterStats:
    """Routing-level counters, on top of the per-device client stats."""

    reads: int = 0
    writes: int = 0
    off_ring_reads: int = 0  #: reads served by a device outside the replica set
    anti_entropy_errors: int = 0  #: anti-entropy loop deaths (non-cancellation)
    ring_swaps: int = 0  #: live cutovers to a new ring (manual or epoch-driven)
    epoch_refreshes: int = 0  #: ring fetches triggered by a stale-epoch signal
    stale_retries: int = 0  #: operations retried after a refresh found a newer ring
    reads_by_device: Dict[int, int] = field(default_factory=dict)
    writes_by_device: Dict[int, int] = field(default_factory=dict)


class _ClientTransport:
    """Bridges :class:`ReplicatedPlacement` onto per-device clients.

    Dedup-aware: the placement engine tags each logical write's fan-out
    copies with one token; the first attempt per ``(device, token)``
    pins a fresh request id and retries (anti-entropy re-pushes) reuse
    it, so the device's reply cache replays a lost ack instead of
    installing a second version with a second effective time.
    """

    #: Bound on remembered (device, token) -> request id pins; entries
    #: clear on success, this cap only matters for writes that keep
    #: failing past the repair engine's give-up point.
    MAX_PINNED = 4096

    def __init__(self, router: "RingRouter") -> None:
        self.router = router
        self._pinned: "OrderedDict[Tuple[int, str], int]" = OrderedDict()

    async def write(
        self, device_id: int, obj: str, value: Any,
        dedup: Optional[str] = None,
    ) -> float:
        client = self.router.clients[device_id]
        req: Optional[int] = None
        if dedup is not None:
            key = (device_id, dedup)
            req = self._pinned.get(key)
            if req is None:
                req = client.next_request_id()
                self._pinned[key] = req
                while len(self._pinned) > self.MAX_PINNED:
                    self._pinned.popitem(last=False)
        alpha = await client.write(obj, value, req=req)
        if dedup is not None:
            self._pinned.pop((device_id, dedup), None)
        stats = self.router.stats.writes_by_device
        stats[device_id] = stats.get(device_id, 0) + 1
        return alpha

    async def read(self, device_id: int, obj: str) -> Any:
        return await self.router.clients[device_id].read(obj)


class RingRouter:
    """One site's view of a ring of lifetime-protocol servers.

    ``endpoints`` maps device id -> ``(host, port)``; it must cover every
    device of ``ring``.  ``read_policy`` is ``"primary"`` (exact: always
    the authoritative device first) or ``"spread"`` (round-robin over the
    replica set — higher read throughput, freshness backed by the W-of-N
    fan-out plus anti-entropy within delta).

    ``registry`` (a :class:`repro.obs.metrics.Registry`) binds the
    router's and placement's counters as pull collectors and propagates
    to the per-device clients (RTT / push-lag histograms, clock gauges,
    per-device ClientStats).  ``instruments`` (a
    :class:`repro.obs.instruments.TimedInstruments`) feeds every routed
    read/write into the live on-time-ratio / visibility-lag monitors;
    :meth:`connect` sets its ``epsilon`` from :attr:`epsilon_bound` once
    the clock-sync handshakes have run.
    """

    def __init__(
        self,
        client_id: int,
        ring: Ring,
        endpoints: Dict[int, Tuple[str, int]],
        *,
        delta: float = math.inf,
        mode: str = "pull",
        write_quorum: Optional[int] = None,
        read_policy: str = "primary",
        recorder: Optional[TraceRecorder] = None,
        skew: float = 0.0,
        sync_rounds: int = 5,
        request_timeout: float = 0.5,
        max_retries: int = 4,
        fault_injectors: Optional[Dict[int, FaultInjector]] = None,
        registry: Optional[Any] = None,
        instruments: Optional[Any] = None,
        pipeline_depth: int = 8,
        batch: int = 0,
    ) -> None:
        if read_policy not in READ_POLICIES:
            raise ValueError(
                f"read_policy must be one of {READ_POLICIES}, got {read_policy!r}"
            )
        missing = set(ring.device_ids()) - set(endpoints)
        if missing:
            raise ValueError(f"no endpoint for ring devices {sorted(missing)}")
        self.client_id = client_id
        self.ring = ring
        self.endpoints = dict(endpoints)
        self.delta = delta
        self.read_policy = read_policy
        self.pipeline_depth = pipeline_depth
        self.batch = batch
        self.recorder = recorder
        self.stats = RouterStats()
        # One local clock shared by every per-device estimator: offsets
        # then compose across devices (module docstring).
        self.local_clock = RebasedClock(offset=skew)
        self.registry = registry
        self.instruments = instruments
        injectors = fault_injectors or {}
        self.clients: Dict[int, NetCacheClient] = {}
        for dev_id in ring.device_ids():
            host, port = endpoints[dev_id]
            self.clients[dev_id] = NetCacheClient(
                client_id, host, port,
                delta=delta, mode=mode, recorder=None,
                clock=SyncedClock(local=self.local_clock),
                sync_rounds=sync_rounds,
                request_timeout=request_timeout, max_retries=max_retries,
                faults=injectors.get(dev_id),
                registry=registry,
                metric_labels={"device": dev_id} if registry is not None else None,
                pipeline_depth=pipeline_depth, batch=batch,
            )
        self.reference = min(self.clients)
        # The reference *clock* outlives the reference client: when the
        # reference device dies and is swapped out, later stamps keep
        # rebasing onto the same timescale — a mid-trace jump of the
        # merged timescale would corrupt every interval the checkers
        # measure (docs/CLUSTER.md).
        self.reference_clock = self.clients[self.reference].clock
        self.epoch = ring.epoch
        for client in self.clients.values():
            client.on_epoch = self._note_epoch
        self.placement = ReplicatedPlacement(
            ring, _ClientTransport(self),
            write_quorum=write_quorum, delta=delta, clock=self.now,
        )
        self._spread_cursor = 0
        self._anti_entropy_task: Optional[asyncio.Task] = None
        self._epoch_watch_task: Optional[asyncio.Task] = None
        self._refresh_task: Optional[asyncio.Task] = None
        self._retired: Set[asyncio.Task] = set()
        if registry is not None:
            from repro.obs.bridge import bind_placement_stats, bind_router_stats

            bind_router_stats(registry, self.stats, site=client_id)
            bind_placement_stats(registry, self.placement.stats, site=client_id)

    # -- lifecycle ------------------------------------------------------------

    async def connect(self) -> "RingRouter":
        for dev_id in sorted(self.clients):
            await self.clients[dev_id].connect()
        if self.instruments is not None:
            # The residual sync error is known only after the NTP
            # exchanges.  Instruments may be shared across routers, so
            # keep the worst bound — the epsilon the merged trace is
            # checked with offline.
            self.instruments.epsilon = max(
                self.instruments.epsilon, self.epsilon_bound
            )
        return self

    async def close(self) -> None:
        await self.stop_epoch_watch()
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            try:
                await self._refresh_task
            except (asyncio.CancelledError, Exception):
                pass
            self._refresh_task = None
        await self.stop_anti_entropy()
        await self.placement.drain()
        if self._retired:
            await asyncio.gather(*list(self._retired), return_exceptions=True)
            self._retired.clear()
        for client in self.clients.values():
            await client.close()

    async def __aenter__(self) -> "RingRouter":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def swap_ring(self, ring: Ring) -> None:
        """Atomic cutover after a rebalance + handoff (docs/RING.md).

        Every device of the new ring must already be connected (adding
        one needs `connect_device` first).  Devices *leaving* the ring
        are closed and dropped here — their clients would otherwise leak
        sockets, clock estimators, and metric collectors for layouts
        that no longer exist — and their queued anti-entropy repairs are
        discarded (the new ring re-homed those partitions).
        """
        missing = set(ring.device_ids()) - set(self.clients)
        if missing:
            raise ValueError(
                f"cannot swap: not connected to devices {sorted(missing)}"
            )
        removed = set(self.clients) - set(ring.device_ids())
        self.ring = ring
        self.placement.ring = ring
        self.epoch = max(self.epoch, ring.epoch)
        self.stats.ring_swaps += 1
        if not removed:
            return
        self.placement.repairs = [
            task for task in self.placement.repairs
            if task.device not in removed
        ]
        for dev_id in sorted(removed):
            client = self.clients.pop(dev_id)
            self.endpoints.pop(dev_id, None)
            client.on_epoch = None
            try:
                task = asyncio.ensure_future(client.close())
            except RuntimeError:
                continue  # no running loop: nothing to close cleanly
            self._retired.add(task)
            task.add_done_callback(self._retired.discard)

    async def connect_device(
        self, dev_id: int, host: str, port: int, **kwargs
    ) -> None:
        """Open a connection to a device about to join the ring."""
        kwargs.setdefault("pipeline_depth", self.pipeline_depth)
        kwargs.setdefault("batch", self.batch)
        client = NetCacheClient(
            self.client_id, host, port,
            delta=self.delta, recorder=None,
            clock=SyncedClock(local=self.local_clock),
            **kwargs,
        )
        await client.connect()
        client.on_epoch = self._note_epoch
        self.clients[dev_id] = client
        self.endpoints[dev_id] = (host, port)

    # -- epoch subscription (docs/CLUSTER.md) ---------------------------------

    def _note_epoch(self, epoch: int, client: NetCacheClient) -> None:
        """A server frame carried a higher ring epoch than ours: some
        layout we don't know is in force.  Schedule one refresh (the
        callback fires from recv loops — never block them)."""
        if epoch <= self.epoch:
            return
        if self._refresh_task is None or self._refresh_task.done():
            self._refresh_task = asyncio.ensure_future(self.refresh_ring())

    async def refresh_ring(self) -> bool:
        """Fetch the ring from every reachable device and adopt the
        highest-epoch layout found; returns whether a swap happened."""
        self.stats.epoch_refreshes += 1
        best_epoch, best_ring = self.epoch, None
        for dev_id in sorted(self.clients):
            client = self.clients.get(dev_id)
            if client is None or not client.connected:
                continue
            try:
                epoch, ring_dict = await client.fetch_ring()
            except asyncio.CancelledError:
                raise
            except (NetError, ConnectionError):
                continue
            if ring_dict is not None and epoch > best_epoch:
                best_epoch, best_ring = epoch, ring_dict
        if best_ring is None:
            return False
        return await self.adopt_ring(Ring.from_dict(best_ring))

    async def adopt_ring(self, ring: Ring) -> bool:
        """Cut over to a strictly newer ring: connect joining devices
        (addressed by their ring ``Device.address``), swap, and let
        :meth:`swap_ring` close the departed ones."""
        if ring.epoch <= self.epoch:
            return False
        for dev_id in ring.device_ids():
            if dev_id in self.clients:
                continue
            device = ring.devices[dev_id]
            if not device.address:
                raise PlacementError(
                    f"ring epoch {ring.epoch} adds device {dev_id} "
                    f"with no address to connect to"
                )
            host, _, port = device.address.rpartition(":")
            await self.connect_device(dev_id, host, int(port))
        self.swap_ring(ring)
        return True

    def start_epoch_watch(self, period: float = 0.25) -> None:
        """Poll for newer rings every ``period`` seconds — the belt to
        the reply-stamp suspenders, for routers that go long stretches
        without issuing a request."""
        if self._epoch_watch_task is None:
            self._epoch_watch_task = asyncio.ensure_future(
                self._epoch_watch(period)
            )

    async def _epoch_watch(self, period: float) -> None:
        while True:
            await asyncio.sleep(period)
            try:
                await self.refresh_ring()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                logger.warning(
                    "epoch watch of site %s: refresh failed: %r",
                    self.client_id, exc,
                )

    async def stop_epoch_watch(self) -> None:
        task = self._epoch_watch_task
        if task is None:
            return
        self._epoch_watch_task = None
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, Exception):
            pass

    # -- clocks ---------------------------------------------------------------

    def now(self) -> float:
        """The reference device's timescale — the merged trace's clock.
        Survives the reference device's departure: the estimator's last
        offset keeps mapping the shared local clock onto its timescale."""
        return self.reference_clock.now()

    def offset_to_reference(self, dev_id: int) -> float:
        """Maps a stamp on ``dev_id``'s timescale onto the reference's."""
        ref = self.reference_clock.estimator.offset
        dev = self.clients[dev_id].clock.estimator.offset
        return ref - dev

    @property
    def epsilon_bound(self) -> float:
        """This site's contribution to the merged trace's epsilon."""
        ref_err = self.reference_clock.estimator.error_bound
        worst = max(
            (client.clock.estimator.error_bound for client in self.clients.values()),
            default=ref_err,
        )
        return 2.0 * (ref_err + worst)

    # -- operations -----------------------------------------------------------

    def _read_order(self, obj: str) -> Tuple[int, ...]:
        devices = self.ring.replicas_for(obj)
        if self.read_policy == "primary" or len(devices) == 1:
            return devices
        self._spread_cursor += 1
        start = self._spread_cursor % len(devices)
        return devices[start:] + devices[:start]

    async def _read_attempt(self, obj: str) -> Tuple[int, Any, int]:
        """One fallback walk over the current ring's replica order."""
        order = self._read_order(obj)
        # Reuse the placement engine's fallback walk, over this read's
        # device order (primary-first or rotated).
        outcome = None
        errors: List[str] = []
        for index, dev in enumerate(order):
            try:
                value = await self.clients[dev].read(obj)
            except asyncio.CancelledError:
                raise
            except (NetError, ConnectionError) as exc:
                errors.append(f"device {dev}: {exc!r}")
                continue
            outcome = (dev, value, index)
            break
        self.placement.stats.reads += 1
        if outcome is None:
            raise PlacementError(
                f"read of {obj!r} failed on every replica: " + "; ".join(errors)
            )
        return outcome

    async def read(self, obj: str) -> Any:
        self.stats.reads += 1
        started = self.now()
        try:
            outcome = await self._read_attempt(obj)
        except PlacementError:
            # Every replica of the layout we hold failed — the layout
            # itself may be the stale thing.  Refresh, and iff a newer
            # ring was adopted, retry once against it.
            if not await self.refresh_ring():
                raise
            self.stats.stale_retries += 1
            outcome = await self._read_attempt(obj)
        dev, value, fallbacks = outcome
        if fallbacks:
            self.placement.stats.fallback_reads += 1
        if dev not in self.ring.replicas_for(obj):
            self.stats.off_ring_reads += 1
        by_dev = self.stats.reads_by_device
        by_dev[dev] = by_dev.get(dev, 0) + 1
        end = self.now()
        if self.recorder is not None:
            self.recorder.record_read(
                self.client_id, obj, value, end, start=started, end=end
            )
        if self.instruments is not None:
            self.instruments.on_read(
                self.client_id, obj, value, end, start=started, end=end
            )
        return value

    async def write(self, obj: str, value: Any) -> float:
        """Replicated write; returns the effective (primary) install time
        on the reference timescale."""
        self.stats.writes += 1
        started = self.now()
        try:
            outcome = await self.placement.write(obj, value)
        except PlacementError:
            # Writing through a dead primary: refresh-then-retry rather
            # than failing through a layout the cluster already left.
            if not await self.refresh_ring():
                raise
            self.stats.stale_retries += 1
            outcome = await self.placement.write(obj, value)
        # Rebase with the device that actually served as primary.  The
        # ring may have been swapped while the write was in flight
        # (concurrent rebalance); re-asking it now could name a device
        # whose clock offset has nothing to do with outcome.alpha.
        alpha_ref = outcome.alpha + self.offset_to_reference(outcome.primary)
        if self.recorder is not None:
            self.recorder.record_write(
                self.client_id, obj, value, alpha_ref,
                start=started, end=self.now(),
            )
        if self.instruments is not None:
            self.instruments.on_write(
                self.client_id, obj, value, alpha_ref,
                start=started, end=self.now(),
            )
        return alpha_ref

    # -- anti-entropy ----------------------------------------------------------

    def start_anti_entropy(self, period: float = 0.05) -> None:
        """Re-push failed fan-out copies every ``period`` seconds, so a
        lagging replica receives a version before its lifetime expires."""
        if self._anti_entropy_task is None:
            self._anti_entropy_task = asyncio.ensure_future(
                self.placement.anti_entropy_loop(period)
            )
            # Surface a loop death the moment it happens — a silently
            # dead anti-entropy loop means replicas quietly stop
            # converging within delta.
            self._anti_entropy_task.add_done_callback(self._anti_entropy_done)

    def _anti_entropy_done(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.stats.anti_entropy_errors += 1
            logger.warning(
                "anti-entropy loop of site %s died: %r", self.client_id, exc
            )

    async def stop_anti_entropy(self) -> None:
        task = self._anti_entropy_task
        if task is None:
            return
        self._anti_entropy_task = None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass  # the cancellation we just requested
        except Exception:
            pass  # already counted and logged by _anti_entropy_done

    # -- reporting -------------------------------------------------------------

    def merged_client_stats(self) -> ClientStats:
        total = ClientStats()
        for client in self.clients.values():
            total = total.merge(client.stats)
        return total
