"""Approximately synchronized clocks over a real transport (Definition 2).

The paper's Definition 2 assumes every site's clock stays within
``epsilon / 2`` of real time, maintained by "periodic resynchronizations
... [Cristian, NTP]".  The simulator models that with
:class:`repro.clocks.physical.SynchronizedClock`; this module *implements*
it for the TCP cluster, treating the object server's clock as the time
reference.

The estimator is the classic NTP four-timestamp exchange.  The client
records ``t0`` (send) and ``t3`` (receive) on its local clock; the server
stamps ``t1`` (receive) and ``t2`` (reply) on its clock.  Then::

    rtt    = (t3 - t0) - (t2 - t1)
    offset = ((t1 - t0) + (t2 - t3)) / 2      # server clock - local clock

and the offset estimate's error is at most ``rtt / 2`` (the true offset
lies within ``offset ± rtt/2`` for any split of the round trip between the
two directions).  Taking the sample with the smallest round trip — NTP's
clock filter — minimizes that bound.  A client whose estimated server
time is within ``err`` of the server's clock satisfies Definition 2's
"within epsilon/2 of the reference" with ``epsilon/2 = err``, so the
cluster-wide precision is ``epsilon = 2 * max_i err_i``: the value the
recorded trace is checked with.

Local time itself comes from a :class:`repro.clocks.RebasedClock` — the
same helper :mod:`repro.sim.aio` uses — optionally with a constant
``offset`` to inject known skew for experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.clocks.rebase import RebasedClock

__all__ = ["RebasedClock", "SyncSample", "ClockSyncEstimator", "SyncedClock"]


@dataclass(frozen=True)
class SyncSample:
    """One completed sync exchange, reduced to its NTP statistics."""

    t0: float  #: client send time (local clock)
    t1: float  #: server receive time (server clock)
    t2: float  #: server reply time (server clock)
    t3: float  #: client receive time (local clock)

    @property
    def rtt(self) -> float:
        """Round-trip time excluding server processing."""
        return (self.t3 - self.t0) - (self.t2 - self.t1)

    @property
    def offset(self) -> float:
        """Estimated ``server clock - local clock``."""
        return ((self.t1 - self.t0) + (self.t2 - self.t3)) / 2.0

    @property
    def error_bound(self) -> float:
        """Half the round trip: worst-case error of :attr:`offset`."""
        return self.rtt / 2.0


class ClockSyncEstimator:
    """NTP-style clock filter: keep the minimum-RTT sample.

    Before any sample arrives the estimator is *unsynchronized*: the
    offset reads 0 and the error bound is infinite.
    """

    def __init__(self) -> None:
        self.samples: List[SyncSample] = []
        self.best: Optional[SyncSample] = None

    def add_sample(self, t0: float, t1: float, t2: float, t3: float) -> SyncSample:
        if t3 < t0:
            raise ValueError(f"reply before request: t0={t0}, t3={t3}")
        sample = SyncSample(t0, t1, t2, t3)
        if sample.rtt < 0:
            raise ValueError(f"negative round trip in sample {sample}")
        self.samples.append(sample)
        if self.best is None or sample.rtt < self.best.rtt:
            self.best = sample
        return sample

    @property
    def synchronized(self) -> bool:
        return self.best is not None

    @property
    def offset(self) -> float:
        """Best estimate of ``server clock - local clock`` (0 if unsynced)."""
        return self.best.offset if self.best is not None else 0.0

    @property
    def error_bound(self) -> float:
        """Worst-case error of :attr:`offset` (``inf`` if unsynced)."""
        return self.best.error_bound if self.best is not None else math.inf

    @property
    def epsilon_bound(self) -> float:
        """This clock's contribution to the cluster's pairwise precision:
        Definition 2 takes ``epsilon = 2 * max`` over the clients."""
        return 2.0 * self.error_bound


class SyncedClock:
    """A local clock corrected onto the server's timescale.

    ``now()`` returns the best estimate of the *server's* current clock
    reading — the approximately synchronized clock ``t_i`` the lifetime
    rules and the recorded trace use.  ``local()`` is the uncorrected
    reading (including any injected skew).
    """

    def __init__(
        self,
        local: Optional[Callable[[], float]] = None,
        skew: float = 0.0,
    ) -> None:
        self._local = local if local is not None else RebasedClock(offset=skew)
        self.skew = skew
        self.estimator = ClockSyncEstimator()

    def local(self) -> float:
        return self._local()

    def now(self) -> float:
        return self._local() + self.estimator.offset

    def __call__(self) -> float:
        return self.now()

    @property
    def epsilon_bound(self) -> float:
        return self.estimator.epsilon_bound
