"""Multi-server TCP soak: ring-routed cluster, recorded and checked.

The multi-server twin of :mod:`repro.net.demo`: start ``n_servers`` real
:class:`~repro.net.server.NetObjectServer` processes-in-miniature (each
with its *own* skewed clock — genuinely distinct timescales), connect
``n_clients`` :class:`~repro.net.ring_router.RingRouter` sites, drive a
mixed read/write workload over a shared namespace, and judge the merged
trace with the offline checkers at the epsilon the routers' clock-sync
layer reports (``max_site 2*(err_ref + max_dev err_dev)``).

Optionally the soak grows the ring mid-run (``add_device_midway``): a
fresh server joins, the builder rebalances (minimal moves), the handoff
is replayed over the live connections while reads continue against the
old ring, then every router cuts over atomically and the workload
resumes.  The whole trace — before, during, and after the handoff —
must still satisfy the timed criterion at the configured delta; that is
the acceptance bar for ``repro ring soak`` and
``tests/test_ring_net.py``.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkers import check_tcc
from repro.checkers.online import ReadVerdict
from repro.checkers.result import CheckResult
from repro.clocks.rebase import RebasedClock
from repro.core.history import History
from repro.net.demo import _judge, default_skews
from repro.net.ring_router import RingRouter, RouterStats
from repro.net.server import NetObjectServer
from repro.ring.placement import PlacementStats
from repro.ring.rebalance import HandoffReport, PartitionMove, Rebalancer
from repro.ring.ring import Ring, RingBuilder
from repro.sim.trace import TraceRecorder, UniqueValueFactory

DEFAULT_OBJECTS = ("apple", "birch", "cedar", "delta", "elm", "fir")


@dataclass
class RingReport:
    """Everything a caller needs to judge one multi-server run."""

    history: History
    ring: Ring
    delta: float
    epsilon: float
    tsc: CheckResult
    tcc: CheckResult
    sc: CheckResult
    verdicts: List[ReadVerdict]
    router_stats: Dict[int, RouterStats]
    placement_stats: Dict[int, PlacementStats]
    server_requests: Dict[int, int]
    moves: List[PartitionMove] = field(default_factory=list)
    handoff: Optional[HandoffReport] = None
    #: Live on-time / visibility summary (``TimedInstruments.summary()``)
    #: when the soak ran with a registry; the online counterpart of the
    #: offline ``tsc`` verdict.
    ontime: Optional[Dict[str, object]] = None
    #: Failover soak fields (``cluster=True`` + ``kill_primary_midway``):
    #: the killed device, crash-to-dead-transition and crash-to-first-
    #: acked-write latencies (seconds), the epoch the cluster converged
    #: on, and how many servers ran the promotion rule.
    killed_device: Optional[int] = None
    time_to_detect: Optional[float] = None
    time_to_recover: Optional[float] = None
    failover_epoch: Optional[int] = None
    promotions: int = 0
    detection_bound: Optional[float] = None

    @property
    def late_reads(self) -> List[ReadVerdict]:
        return [v for v in self.verdicts if not v.on_time]

    @property
    def off_ring_reads(self) -> int:
        return sum(s.off_ring_reads for s in self.router_stats.values())

    @property
    def reads_by_device(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for stats in self.router_stats.values():
            for dev, count in stats.reads_by_device.items():
                merged[dev] = merged.get(dev, 0) + count
        return merged

    @property
    def writes_by_device(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for stats in self.router_stats.values():
            for dev, count in stats.writes_by_device.items():
                merged[dev] = merged.get(dev, 0) + count
        return merged

    def repairs(self) -> Tuple[int, int, int]:
        """(queued, done, late) summed over all routers."""
        queued = sum(s.repairs_queued for s in self.placement_stats.values())
        done = sum(s.repairs_done for s in self.placement_stats.values())
        late = sum(s.repairs_late for s in self.placement_stats.values())
        return queued, done, late


async def ring_cluster(
    *,
    n_servers: int = 3,
    replicas: int = 2,
    n_clients: int = 2,
    part_power: int = 6,
    delta: float = 0.4,
    objects: Sequence[str] = DEFAULT_OBJECTS,
    rounds: int = 30,
    duration: Optional[float] = None,
    write_fraction: float = 0.3,
    think: float = 0.002,
    skew: float = 0.05,
    server_skew: float = 0.02,
    seed: int = 7,
    write_quorum: Optional[int] = None,
    read_policy: str = "primary",
    add_device_midway: bool = False,
    cluster: bool = False,
    probe_period: float = 0.1,
    suspect_timeout: float = 0.3,
    kill_primary_midway: bool = False,
    host: str = "127.0.0.1",
    registry: Optional[object] = None,
    store_root: Optional[str] = None,
    fsync: str = "interval",
    pipeline_depth: int = 8,
    batch: int = 0,
) -> RingReport:
    """Run one ring-routed cluster end to end; see the module docstring.

    ``duration`` (seconds) makes the main workload phase time-bounded:
    each client keeps issuing operations until the deadline instead of
    stopping after ``rounds`` — the knob ``repro ring soak --duration``
    exposes for wall-clock-sized soaks.  ``rounds`` is ignored for the
    main phase when ``duration`` is set (the shorter post-growth /
    post-failover phases still derive from ``rounds``).

    ``store_root`` gives every server a :class:`repro.store.DurableStore`
    under ``<store_root>/dev<id>`` (WAL policy ``fsync``); the midway
    handoff then streams moved objects from the on-disk snapshots/WALs
    (:class:`repro.store.SnapshotCatalog`) rather than the donors' live
    memory — the configuration that survives a donor crash.

    ``registry`` (a :class:`repro.obs.metrics.Registry`) instruments the
    whole cluster: every server and router binds its counters, and one
    shared :class:`~repro.obs.instruments.TimedInstruments` judges reads
    online at the configured delta (epsilon set from the routers'
    clock-sync bounds after connect).  The report then carries the live
    ``ontime`` summary next to the offline checker verdicts.  A caller
    wanting a live ``/metrics`` endpoint starts a
    :class:`~repro.obs.expo.MetricsServer` over the same registry and
    runs the soak as a task (see ``repro ring soak --metrics-port``).
    """
    if replicas > n_servers:
        raise ValueError(
            f"replication factor {replicas} exceeds {n_servers} servers"
        )
    builder = RingBuilder(part_power, replicas)
    for dev_id in range(n_servers):
        builder.add_device(dev_id)
    ring, _ = builder.rebalance()

    instruments = None
    if registry is not None:
        from repro.obs.instruments import TimedInstruments

        instruments = TimedInstruments(registry, delta)

    def device_store(dev_id: int):
        if store_root is None:
            return None
        import os

        from repro.store import DurableStore

        return DurableStore(
            os.path.join(store_root, f"dev{dev_id}"),
            fsync=fsync,
            registry=registry,
            metric_labels=(
                {"store": f"dev{dev_id}"} if registry is not None else None
            ),
        )

    server_skews = default_skews(n_servers + 1, server_skew)
    servers: Dict[int, NetObjectServer] = {}
    for dev_id in range(n_servers):
        server = NetObjectServer(
            host, 0, propagation="none",
            clock=RebasedClock(offset=server_skews[dev_id]),
            registry=registry,
            metric_labels={"device": dev_id} if registry is not None else None,
            store=device_store(dev_id),
        )
        await server.start()
        servers[dev_id] = server
    endpoints = {dev_id: (host, srv.port) for dev_id, srv in servers.items()}

    if kill_primary_midway and not cluster:
        raise ValueError("kill_primary_midway requires cluster=True")
    if kill_primary_midway and add_device_midway:
        raise ValueError(
            "kill_primary_midway and add_device_midway are separate soaks"
        )
    cluster_agents: Dict[int, object] = {}
    cluster_config = None
    if cluster:
        from repro.cluster import ClusterConfig, ClusterView, SwimAgent

        cluster_config = ClusterConfig(
            probe_period=probe_period, suspect_timeout=suspect_timeout,
            seed=seed,
        )
        cluster_instruments = {}
        if registry is not None:
            from repro.obs.instruments import ClusterInstruments

            cluster_instruments = {
                dev_id: ClusterInstruments(registry, member=dev_id)
                for dev_id in servers
            }
        addresses = {dev_id: srv.address for dev_id, srv in servers.items()}
        for dev_id, server in servers.items():
            agent = SwimAgent(
                dev_id, server,
                ClusterView.seed(addresses, ring=ring.as_dict()),
                cluster_config,
                instruments=cluster_instruments.get(dev_id),
            )
            await agent.start()
            cluster_agents[dev_id] = agent

    recorder = TraceRecorder()
    values = UniqueValueFactory()
    client_skews = default_skews(n_clients, skew)
    routers = [
        RingRouter(
            i, ring, endpoints,
            delta=delta, write_quorum=write_quorum, read_policy=read_policy,
            recorder=recorder, skew=client_skews[i],
            registry=registry, instruments=instruments,
            pipeline_depth=pipeline_depth, batch=batch,
        )
        for i in range(n_clients)
    ]
    moves: List[PartitionMove] = []
    handoff: Optional[HandoffReport] = None
    final_ring = ring
    killed_device: Optional[int] = None
    time_to_detect: Optional[float] = None
    time_to_recover: Optional[float] = None
    failover_epoch: Optional[int] = None
    promotions = 0
    try:
        for router in routers:
            await router.connect()
            router.start_anti_entropy(period=min(0.05, delta / 4.0)
                                      if not math.isinf(delta) else 0.05)
            if cluster:
                # Belt to the reply-stamp suspenders: poll for higher
                # epochs too, so an idle router still converges.
                router.start_epoch_watch(period=probe_period)
        # Seed: every object gets a first real version on its full
        # replica set, so no read depends on the servers' initial value.
        for obj in objects:
            await routers[0].write(obj, values.next_value(routers[0].client_id))

        async def mixed(
            router: RingRouter, n: int, salt: int,
            until: Optional[float] = None,
        ) -> None:
            rng = random.Random(seed + 31 * router.client_id + salt)
            issued = 0
            while (time.monotonic() < until) if until is not None else (
                issued < n
            ):
                issued += 1
                await asyncio.sleep(rng.uniform(0.0, 2 * think))
                obj = rng.choice(list(objects))
                if rng.random() < write_fraction:
                    await router.write(obj, values.next_value(router.client_id))
                else:
                    await router.read(obj)

        until = (
            time.monotonic() + duration if duration is not None else None
        )
        await asyncio.gather(*(mixed(r, rounds, 0, until) for r in routers))

        if kill_primary_midway:
            from repro.cluster import DEAD
            from repro.net.client import NetError
            from repro.ring.placement import PlacementError

            # Crash the primary of the first workload object — no BYE,
            # no clean snapshot, no manual swap_ring anywhere below:
            # detection, promotion, and the routers' cutover all happen
            # through the cluster subsystem.
            victim = ring.primary_for(objects[0])
            killed_device = victim
            kill_at = time.monotonic()
            await servers[victim].abort()
            await cluster_agents[victim].stop()

            # Recovery from the client's seat: keep writing the orphaned
            # object until a write is acknowledged again.  PlacementError
            # triggers the router's refresh-then-retry; until a survivor
            # serves the new epoch the retry fails and we back off.
            deadline = kill_at + cluster_config.detection_bound + 10.0
            recovered_at = None
            while time.monotonic() < deadline:
                try:
                    await routers[0].write(
                        objects[0], values.next_value(routers[0].client_id)
                    )
                    recovered_at = time.monotonic()
                    break
                except (PlacementError, NetError):
                    await asyncio.sleep(probe_period / 4.0)
            if recovered_at is not None:
                time_to_recover = recovered_at - kill_at

            # Let the membership converge: every survivor serving the
            # failed-over epoch and holding the victim dead.
            survivors = {
                d: a for d, a in cluster_agents.items() if d != victim
            }
            while time.monotonic() < deadline:
                if all(
                    victim in a.view.ids(DEAD)
                    and a.server.epoch > ring.epoch
                    for a in survivors.values()
                ):
                    break
                await asyncio.sleep(probe_period / 2.0)
            detected = [
                a.dead_detected[victim] for a in survivors.values()
                if victim in a.dead_detected
            ]
            if detected:
                time_to_detect = min(detected) - kill_at
            promotions = sum(s.promotions for d, s in servers.items()
                             if d != victim)
            failover_epoch = max(a.server.epoch for a in survivors.values())
            coordinator_ring = next(
                (a.server.ring for a in survivors.values()
                 if a.server.ring is not None
                 and int(a.server.ring.get("epoch", 0)) == failover_epoch),
                None,
            )
            if coordinator_ring is not None:
                final_ring = Ring.from_dict(coordinator_ring)
            if registry is not None and cluster:
                for d, a in survivors.items():
                    if a.instruments is None:
                        continue
                    if time_to_detect is not None:
                        a.instruments.set_time_to_detect(time_to_detect)
                    if time_to_recover is not None:
                        a.instruments.set_time_to_recover(time_to_recover)

            # The workload resumes against the survivors; early rounds
            # may still race the routers' cutover, so tolerate and retry.
            async def mixed_after_failover(router: RingRouter, n: int) -> None:
                rng = random.Random(seed + 97 * router.client_id)
                for _ in range(n):
                    await asyncio.sleep(rng.uniform(0.0, 2 * think))
                    obj = rng.choice(list(objects))
                    write = rng.random() < write_fraction
                    for _attempt in range(40):
                        try:
                            if write:
                                await router.write(
                                    obj, values.next_value(router.client_id)
                                )
                            else:
                                await router.read(obj)
                            break
                        except (PlacementError, NetError):
                            await asyncio.sleep(probe_period / 4.0)

            await asyncio.gather(
                *(mixed_after_failover(r, max(rounds // 2, 5))
                  for r in routers)
            )

        if add_device_midway:
            new_id = n_servers
            joiner = NetObjectServer(
                host, 0, propagation="none",
                clock=RebasedClock(offset=server_skews[new_id]),
                store=device_store(new_id),
            )
            await joiner.start()
            servers[new_id] = joiner
            for router in routers:
                await router.connect_device(new_id, host, joiner.port)
            rebalancer = Rebalancer(builder, ring)
            new_ring, moves = rebalancer.add_device(
                new_id, address=f"{host}:{joiner.port}"
            )
            # Copy moved partitions over the live connections while the
            # routers keep reading against the OLD ring (writes pause for
            # the copy window — the cutover discipline of docs/RING.md).
            stop_reading = asyncio.Event()

            async def read_through_handoff(router: RingRouter) -> None:
                rng = random.Random(seed + router.client_id)
                while not stop_reading.is_set():
                    await router.read(rng.choice(list(objects)))
                    await asyncio.sleep(think)

            readers = [
                asyncio.ensure_future(read_through_handoff(r)) for r in routers
            ]
            snapshots = None
            if store_root is not None:
                import os

                from repro.store import SnapshotCatalog

                snapshots = SnapshotCatalog({
                    dev_id: os.path.join(store_root, f"dev{dev_id}")
                    for dev_id in servers
                })
            try:
                handoff = await rebalancer.handoff(
                    moves, objects, ring, routers[0].placement.transport,
                    snapshots=snapshots,
                )
            finally:
                stop_reading.set()
                await asyncio.gather(*readers, return_exceptions=True)
            for router in routers:
                router.swap_ring(new_ring)
            final_ring = new_ring
            await asyncio.gather(
                *(mixed(r, max(rounds // 2, 5), 1) for r in routers)
            )

        for router in routers:
            await router.placement.drain()
    finally:
        for agent in cluster_agents.values():
            await agent.stop()
        for router in routers:
            await router.close()
        for server in servers.values():
            await server.close()

    history = recorder.history()
    epsilon = max(router.epsilon_bound for router in routers)
    tsc, sc, verdicts = _judge(history, delta, epsilon)
    tcc = check_tcc(history, delta, epsilon)
    return RingReport(
        history=history,
        ring=final_ring,
        delta=delta,
        epsilon=epsilon,
        tsc=tsc,
        tcc=tcc,
        sc=sc,
        verdicts=verdicts,
        router_stats={r.client_id: r.stats for r in routers},
        placement_stats={r.client_id: r.placement.stats for r in routers},
        server_requests={d: s.requests for d, s in servers.items()},
        moves=list(moves),
        handoff=handoff,
        ontime=instruments.summary() if instruments is not None else None,
        killed_device=killed_device,
        time_to_detect=time_to_detect,
        time_to_recover=time_to_recover,
        failover_epoch=failover_epoch,
        promotions=promotions,
        detection_bound=(
            cluster_config.detection_bound if cluster_config is not None
            else None
        ),
    )


def run_ring_soak(
    *,
    metrics_port: Optional[int] = None,
    metrics_host: str = "127.0.0.1",
    **kwargs,
) -> RingReport:
    """Synchronous wrapper around :func:`ring_cluster`.

    ``metrics_port`` (0 for an ephemeral port) serves the soak's
    registry on ``http://<metrics_host>:<port>/metrics`` for the run's
    duration — a registry is created if the caller did not pass one.
    """

    async def _run() -> RingReport:
        registry = kwargs.pop("registry", None)
        metrics = None
        if metrics_port is not None:
            if registry is None:
                from repro.obs.metrics import Registry

                registry = Registry()
            from repro.obs.expo import MetricsServer

            metrics = await MetricsServer(
                registry, metrics_host, metrics_port
            ).start()
        try:
            return await ring_cluster(registry=registry, **kwargs)
        finally:
            if metrics is not None:
                await metrics.close()

    return asyncio.run(_run())
