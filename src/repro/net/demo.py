"""In-process localhost clusters: run, record, then check the trace.

The loop-closer for ``repro.net``: start a real TCP server, connect real
clients (each with its own skewed-then-synchronized clock), drive a
workload, and hand the *recorded* execution to the offline checkers with
the ``epsilon`` the clock-sync layer itself reports.  Everything runs on
one event loop so a single :class:`~repro.sim.trace.TraceRecorder` sees
the whole cluster — the multi-process deployment (``repro serve`` /
``repro client``) records per-process traces instead.

Two canned scenarios:

* :func:`run_push_staleness_demo` — the acceptance scenario: one writer,
  N-1 subscribed readers in ``push`` mode, clock skew on every client,
  and a fault injector delaying only ``push`` frames.  With delay within
  the bound the trace satisfies TSC(delta); with delay > delta the
  readers keep serving the old version from cache past its deadline and
  the checkers (offline TSC and the online monitor) flag the late reads.
* :func:`run_random_net_workload` — a uniform read/write mix in ``pull``
  mode, for latency/hit-ratio measurements as a function of delta
  (``benchmarks/bench_net_delta.py``).
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkers import check_sc, check_tsc
from repro.checkers.online import OnlineTimedMonitor, ReadVerdict
from repro.checkers.result import CheckResult
from repro.core.history import History
from repro.net.client import NetCacheClient
from repro.net.faults import FaultConfig, FaultInjector
from repro.net.server import NetObjectServer
from repro.protocol import messages
from repro.protocol.stats import ClientStats
from repro.sim.trace import TraceRecorder, UniqueValueFactory


@dataclass
class ClusterReport:
    """Everything a caller needs to judge one cluster run."""

    history: History
    delta: float
    epsilon: float
    tsc: CheckResult
    sc: CheckResult
    verdicts: List[ReadVerdict]
    client_stats: Dict[int, ClientStats]
    client_offsets: Dict[int, float] = field(default_factory=dict)
    server_requests: int = 0
    pushes_sent: int = 0

    @property
    def late_reads(self) -> List[ReadVerdict]:
        return [v for v in self.verdicts if not v.on_time]

    def totals(self) -> ClientStats:
        merged = ClientStats()
        for stats in self.client_stats.values():
            merged = merged.merge(stats)
        return merged


def _judge(history: History, delta: float, epsilon: float) -> Tuple[
    CheckResult, CheckResult, List[ReadVerdict]
]:
    """Offline TSC + SC verdicts plus per-read online-monitor verdicts."""
    tsc = check_tsc(history, delta, epsilon)
    sc = check_sc(history)
    monitor = OnlineTimedMonitor(delta, epsilon=epsilon,
                                 initial_value=history.initial_value)
    ordered = sorted(history.operations, key=lambda op: (op.time, op.uid))
    verdicts = monitor.observe_all(ordered)
    return tsc, sc, verdicts


def _report(
    history: History,
    delta: float,
    clients: Sequence[NetCacheClient],
    server: NetObjectServer,
) -> ClusterReport:
    epsilon = max(client.epsilon_bound for client in clients)
    tsc, sc, verdicts = _judge(history, delta, epsilon)
    return ClusterReport(
        history=history,
        delta=delta,
        epsilon=epsilon,
        tsc=tsc,
        sc=sc,
        verdicts=verdicts,
        client_stats={c.client_id: c.stats for c in clients},
        client_offsets={c.client_id: c.clock.estimator.offset for c in clients},
        server_requests=server.requests,
        pushes_sent=server.pushes_sent,
    )


async def _start_cluster(
    server: NetObjectServer, clients: Sequence[NetCacheClient]
) -> None:
    await server.start()
    for client in clients:
        client.port = server.port
        await client.connect()


async def _stop_cluster(
    server: NetObjectServer, clients: Sequence[NetCacheClient]
) -> None:
    for client in clients:
        await client.close()
    await server.close()


def default_skews(n_clients: int, magnitude: float) -> List[float]:
    """Alternating +/- skews so no two clients share a clock error."""
    return [
        magnitude * (1 + i // 2) * (1 if i % 2 == 0 else -1)
        for i in range(n_clients)
    ]


async def push_staleness_cluster(
    *,
    n_clients: int = 3,
    delta: float = 0.3,
    push_delay: float = 0.0,
    skew: float = 0.1,
    hold: Optional[float] = None,
    read_period: float = 0.02,
    host: str = "127.0.0.1",
) -> ClusterReport:
    """The acceptance scenario, as a coroutine (see module docstring)."""
    if n_clients < 2:
        raise ValueError("need at least one writer and one reader")
    recorder = TraceRecorder()
    values = UniqueValueFactory()
    fault_factory = None
    if push_delay > 0:
        fault_factory = lambda: FaultInjector(
            FaultConfig(delay=push_delay), kinds={messages.PUSH}
        )
    server = NetObjectServer(host, 0, propagation="push",
                             fault_factory=fault_factory)
    skews = default_skews(n_clients, skew)
    clients = [
        NetCacheClient(i, host, 0, delta=delta, mode="push",
                       recorder=recorder, skew=skews[i])
        for i in range(n_clients)
    ]
    await _start_cluster(server, clients)
    try:
        writer, readers = clients[0], clients[1:]
        # Seed: everyone caches version v0.
        await writer.write("x", values.next_value(writer.client_id))
        for reader in readers:
            await reader.read("x")
        # The step: v1 is installed; its push is (possibly) delayed.
        await writer.write("x", values.next_value(writer.client_id))
        window = hold if hold is not None else max(push_delay, delta) + 0.3

        async def read_loop(reader: NetCacheClient) -> None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + window
            while loop.time() < deadline:
                await reader.read("x")
                await asyncio.sleep(read_period)

        await asyncio.gather(*(read_loop(reader) for reader in readers))
    finally:
        await _stop_cluster(server, clients)
    return _report(recorder.history(), delta, clients, server)


def run_push_staleness_demo(**kwargs) -> ClusterReport:
    """Synchronous wrapper around :func:`push_staleness_cluster`."""
    return asyncio.run(push_staleness_cluster(**kwargs))


async def random_net_cluster(
    *,
    n_clients: int = 3,
    delta: float = math.inf,
    objects: Sequence[str] = ("x", "y", "z"),
    rounds: int = 20,
    write_fraction: float = 0.2,
    think: float = 0.004,
    skew: float = 0.05,
    client_faults: Optional[FaultConfig] = None,
    seed: int = 7,
    host: str = "127.0.0.1",
) -> ClusterReport:
    """A uniform random workload over a pull-mode cluster."""
    recorder = TraceRecorder()
    values = UniqueValueFactory()
    server = NetObjectServer(host, 0, propagation="none")
    skews = default_skews(n_clients, skew)
    clients = [
        NetCacheClient(
            i, host, 0, delta=delta, mode="pull", recorder=recorder,
            skew=skews[i],
            faults=FaultInjector(client_faults, kinds={
                messages.FETCH, messages.VALIDATE, messages.WRITE,
            }) if client_faults is not None else None,
        )
        for i in range(n_clients)
    ]
    await _start_cluster(server, clients)
    try:
        async def workload(client: NetCacheClient) -> None:
            rng = random.Random(seed + client.client_id)
            for _ in range(rounds):
                await asyncio.sleep(rng.uniform(0.0, 2 * think))
                obj = rng.choice(list(objects))
                if rng.random() < write_fraction:
                    await client.write(obj, values.next_value(client.client_id))
                else:
                    await client.read(obj)

        await asyncio.gather(*(workload(client) for client in clients))
    finally:
        await _stop_cluster(server, clients)
    return _report(recorder.history(), delta, clients, server)


def run_random_net_workload(**kwargs) -> ClusterReport:
    """Synchronous wrapper around :func:`random_net_cluster`."""
    return asyncio.run(random_net_cluster(**kwargs))
