"""A real TCP replica cluster running the lifetime protocol.

Everything else in this repository runs either on the deterministic
simulator (:mod:`repro.sim`) or on in-process asyncio
(:mod:`repro.sim.aio`).  This package is the *distributed* counterpart:

* :mod:`repro.net.framing` — length-prefixed JSON frames over TCP;
* :mod:`repro.net.server` — the authoritative object server
  (``asyncio.start_server``), speaking the protocol kinds of
  :mod:`repro.protocol.messages` plus the clock-sync handshake;
* :mod:`repro.net.client` — the Sections 5.1-5.2 cache client with
  request retry/backoff and push/invalidate handling;
* :mod:`repro.net.clocksync` — NTP-style offset/epsilon estimation so
  every client runs an approximately synchronized clock (Definition 2);
* :mod:`repro.net.faults` — frame-level delay/drop/duplicate/partition
  injection;
* :mod:`repro.net.demo` — in-process localhost clusters whose recorded
  traces are verified by the offline checkers (the acceptance loop);
* :mod:`repro.net.ring_router` — the multi-server client: one
  connection per ring device, W-of-N replicated writes, primary-first
  reads, per-server clock sync composed onto one reference timescale;
* :mod:`repro.net.ring_demo` — the multi-server soak harness behind
  ``repro ring soak`` and the acceptance tests.

See docs/NET_PROTOCOL.md for the wire format and failure semantics,
docs/RING.md for placement and the multi-clock epsilon composition.
"""

from repro.net.client import (
    NetCacheClient,
    NetError,
    ProtocolError,
    RequestTimeout,
)
from repro.net.clocksync import ClockSyncEstimator, SyncedClock, SyncSample
from repro.net.demo import (
    ClusterReport,
    run_push_staleness_demo,
    run_random_net_workload,
)
from repro.net.faults import FaultConfig, FaultInjector
from repro.net.framing import (
    FrameConnection,
    FrameError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.net.ring_demo import RingReport, ring_cluster, run_ring_soak
from repro.net.ring_router import RingRouter, RouterStats
from repro.net.server import NetObjectServer

__all__ = [
    "ClockSyncEstimator",
    "ClusterReport",
    "FaultConfig",
    "FaultInjector",
    "FrameConnection",
    "FrameError",
    "MAX_FRAME_BYTES",
    "NetCacheClient",
    "NetError",
    "NetObjectServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RequestTimeout",
    "RingReport",
    "RingRouter",
    "RouterStats",
    "SyncSample",
    "SyncedClock",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "ring_cluster",
    "run_push_staleness_demo",
    "run_ring_soak",
    "run_random_net_workload",
]
