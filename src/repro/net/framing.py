"""Length-prefixed JSON frames over a byte stream.

The wire format of ``repro.net`` (see docs/NET_PROTOCOL.md): every
message is one *frame* —

    +----------------+----------------------------------+
    | 4 bytes        | N bytes                          |
    | N (big-endian) | UTF-8 JSON object                |
    +----------------+----------------------------------+

JSON keeps the protocol language-agnostic and debuggable (``nc`` plus a
hex dump is enough to follow a session); the length prefix makes message
boundaries explicit so a frame is either delivered whole or not at all.
Payload values are restricted to JSON scalars, which is all the lifetime
protocol needs (object names, values, timestamps).

:class:`FrameConnection` pairs an ``asyncio`` stream reader/writer with
the codec and an optional :class:`repro.net.faults.FaultInjector` that
drops, delays, duplicates, or partitions outbound frames.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Set

#: Hard cap on a frame's payload size; a peer announcing more is corrupt
#: (or malicious) and the connection is torn down rather than buffered.
MAX_FRAME_BYTES = 1 << 20

#: Wire protocol version carried in the HELLO exchange.
PROTOCOL_VERSION = 1

# Handshake and housekeeping kinds specific to the wire protocol; the
# data-plane kinds (fetch/validate/write/push/...) come from
# :mod:`repro.protocol.messages`.
HELLO = "hello"
HELLO_ACK = "hello-ack"
SYNC = "sync"
SYNC_ACK = "sync-ack"
BYE = "bye"
ERROR = "error"
#: Server -> client backpressure: the request was shed *unexecuted*
#: because the server's ``inflight_limit`` was reached; the client backs
#: off and reissues under the same request id.
BUSY = "busy"

# Cluster control plane (repro.cluster; docs/CLUSTER.md).  Probe frames
# piggyback gossip (a ClusterView wire payload) and are served inline by
# the server like SYNC — never deduped, never queued behind data-plane
# backpressure.
#: Agent -> agent: direct liveness probe, carries piggybacked gossip.
PING = "ping"
#: The probe's answer, carrying the responder's gossip back.
PING_ACK = "ping-ack"
#: Agent -> proxy agent: "ping this target on my behalf" (SWIM's
#: indirect probe — disambiguates a dead member from a dead *link*).
PING_REQ = "ping-req"
#: Proxy -> requester: whether the indirect probe got through.
PING_REQ_ACK = "ping-req-ack"
#: Anyone -> server: send me your current ring (epoch + layout).
RING_FETCH = "ring-fetch"
#: The ring reply: ``{"epoch": int, "ring": dict | null}``.
RING_STATE = "ring-state"
#: Anyone -> server: send me your cluster view (``repro cluster status``).
CLUSTER_STATE = "cluster-state"
#: The view reply: ``{"epoch": int, "view": dict | null}``.
CLUSTER_VIEW = "cluster-view"
#: Coordinator -> new primary: apply the promotion rule
#: ``Context := max(known, t_promote - bound)`` and mark versions older
#: than the detection bound *old* (re-proved on first touch).
PROMOTE = "promote"
PROMOTE_ACK = "promote-ack"
#: Coordinator -> source device: push the listed partition moves to
#: their new holders before the epoch cutover (handoff replay).
HANDOFF = "handoff"
HANDOFF_ACK = "handoff-ack"

#: Frame kinds the server hands to its cluster agent (or answers itself
#: for RING_FETCH / CLUSTER_STATE), outside the exactly-once data plane.
CLUSTER_KINDS = frozenset({
    PING, PING_REQ, RING_FETCH, CLUSTER_STATE, PROMOTE, HANDOFF,
})

_LENGTH = struct.Struct(">I")


class FrameError(Exception):
    """A malformed frame: oversized, truncated, or not a JSON object."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message to ``length || JSON`` bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload; the top-level value must be an object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError(f"frame is not a JSON object: {type(message).__name__}")
    return message


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"announced frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed mid-frame") from None
    return decode_frame(payload)


class FrameConnection:
    """One framed duplex connection, with optional outbound fault injection.

    ``send`` is fire-and-forget: a frame selected for delay by the
    injector is written later by a background task (frames may therefore
    reorder, as on a real network); a dropped frame is simply never
    written.  Each frame is buffered with a single ``write`` call, so
    concurrent senders never interleave bytes mid-frame.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        faults: Optional["FaultInjector"] = None,  # noqa: F821
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.faults = faults
        self.sent = 0
        self.received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._delayed: Set[asyncio.Task] = set()

    @property
    def peername(self) -> str:
        peer = self.writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "?"

    async def send(self, message: Dict[str, Any]) -> None:
        data = encode_frame(message)
        deliveries = (
            [0.0]
            if self.faults is None
            else self.faults.plan(message.get("kind", ""))
        )
        for delay in deliveries:
            if delay <= 0.0:
                self._write(data)
            else:
                task = asyncio.ensure_future(self._write_later(data, delay))
                self._delayed.add(task)
                task.add_done_callback(self._delayed.discard)
        if any(delay <= 0.0 for delay in deliveries):
            await self._drain()

    def _write(self, data: bytes) -> None:
        if self.writer.is_closing():
            return
        self.writer.write(data)
        self.sent += 1
        self.bytes_sent += len(data)

    async def _write_later(self, data: bytes, delay: float) -> None:
        await asyncio.sleep(delay)
        self._write(data)
        await self._drain()

    async def _drain(self) -> None:
        try:
            await self.writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # peer went away; the reader side will notice

    async def recv(self) -> Optional[Dict[str, Any]]:
        while True:
            frame = await read_frame(self.reader)
            if frame is None:
                return None
            self.received += 1
            # Approximate (re-encoded) payload size: the reader consumed
            # the original bytes already; close enough for byte gauges.
            self.bytes_received += _LENGTH.size + len(
                json.dumps(frame, separators=(",", ":"))
            )
            if self.faults is not None and self.faults.drops_inbound(
                str(frame.get("kind", ""))
            ):
                continue  # asymmetric partition: arrived, never delivered
            return frame

    async def close(self) -> None:
        for task in list(self._delayed):
            task.cancel()
        self._delayed.clear()
        if not self.writer.is_closing():
            self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass
