"""The consistent-hash partition ring (Swift's ``account.builder`` idea).

An object name is hashed with md5 (stable across interpreter runs and
machines — ``PYTHONHASHSEED`` never enters placement) and the top
``part_power`` bits select one of ``2**part_power`` *partitions*.  The
ring assigns every partition to ``replicas`` distinct devices, in
proportion to device weights; the first assigned device is the
partition's **primary** (the single authoritative server the lifetime
protocol's correctness argument relies on), the rest are its replicas.

Two classes:

* :class:`RingBuilder` — the mutable, serializable builder: add/remove/
  reweight devices, then :meth:`RingBuilder.rebalance` to (re)compute
  the assignment with the minimal partition moves.  Builders round-trip
  through JSON (``save``/``load``) so a deployment can be versioned like
  Swift's ``swift-ring-builder account.builder`` files.
* :class:`Ring` — the immutable view handed to routers and directories:
  ``partition_for`` / ``replicas_for`` / ``primary_for``.

The rebalance algorithm is deterministic (no RNG): assignment slots are
kept wherever they remain legal, overloaded devices are trimmed down to
``ceil(target)``, and freed slots go to the device with the largest
weight deficit (ties broken by smallest device id).  Adding one device
therefore moves only the partitions the new device must receive;
removing one moves only the partitions it held — the "minimal partition
moves" property the tests assert.
"""

from __future__ import annotations

import hashlib
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Serialization format version of builder/ring files.
FORMAT_VERSION = 1


def stable_hash(name: str) -> int:
    """A deterministic 64-bit hash of an object name.

    md5 of the UTF-8 bytes, top 8 bytes, big-endian — identical across
    interpreter restarts, ``PYTHONHASHSEED`` values, and platforms,
    unlike Python's builtin ``hash()``.
    """
    digest = hashlib.md5(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class Device:
    """One storage device (= one lifetime-protocol server) on the ring."""

    id: int
    weight: float = 1.0
    zone: int = 0
    address: str = ""  #: ``host:port`` for the TCP stack; unused by the sim

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"device id must be non-negative, got {self.id}")
        if self.weight < 0:
            raise ValueError(f"device weight must be non-negative, got {self.weight}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id, "weight": self.weight,
            "zone": self.zone, "address": self.address,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Device":
        return cls(
            id=int(data["id"]), weight=float(data.get("weight", 1.0)),
            zone=int(data.get("zone", 0)), address=str(data.get("address", "")),
        )


class Ring:
    """An immutable partition -> devices map, addressed by object name.

    ``epoch`` is the ring's **monotone layout version**: every rebalance
    or failover produces a ring with a strictly larger epoch, servers
    stamp their replies with the epoch they serve, and routers treat any
    higher epoch they observe as "my layout is stale — refresh before
    routing more writes" (docs/CLUSTER.md).  Epoch 0 is the pre-cluster
    legacy value; old serialized rings load as epoch 0.
    """

    def __init__(
        self,
        part_power: int,
        replicas: int,
        devices: Dict[int, Device],
        assignment: Sequence[Sequence[int]],
        epoch: int = 0,
    ) -> None:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self.part_power = part_power
        self.replicas = replicas
        self.epoch = epoch
        self.devices = dict(devices)
        self.assignment: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(slots) for slots in assignment
        )
        self._part_shift = 64 - part_power
        if len(self.assignment) != 2 ** part_power:
            raise ValueError(
                f"assignment has {len(self.assignment)} partitions, "
                f"expected {2 ** part_power}"
            )

    @property
    def partitions(self) -> int:
        return len(self.assignment)

    def device(self, dev_id: int) -> Device:
        return self.devices[dev_id]

    def device_ids(self) -> List[int]:
        return sorted(self.devices)

    def partition_for(self, obj: str) -> int:
        """The partition an object name hashes into."""
        return stable_hash(obj) >> self._part_shift

    def replicas_for(self, obj: str) -> Tuple[int, ...]:
        """All devices holding ``obj`` — primary first."""
        return self.assignment[self.partition_for(obj)]

    def primary_for(self, obj: str) -> int:
        """The object's single authoritative device."""
        return self.assignment[self.partition_for(obj)][0]

    def load(self) -> Dict[int, int]:
        """Assigned partition-replica count per device."""
        counts = {dev_id: 0 for dev_id in self.devices}
        for slots in self.assignment:
            for dev_id in slots:
                counts[dev_id] += 1
        return counts

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT_VERSION,
            "part_power": self.part_power,
            "replicas": self.replicas,
            "epoch": self.epoch,
            "devices": [self.devices[d].as_dict() for d in sorted(self.devices)],
            "assignment": [list(slots) for slots in self.assignment],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Ring":
        devices = {
            int(d["id"]): Device.from_dict(d) for d in data["devices"]  # type: ignore[index]
        }
        return cls(
            int(data["part_power"]), int(data["replicas"]),
            devices, data["assignment"],  # type: ignore[arg-type]
            epoch=int(data.get("epoch", 0)),  # pre-epoch files load as 0
        )

    def save(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(json.dumps(self.as_dict()))

    @classmethod
    def load_file(cls, path: Union[str, pathlib.Path]) -> "Ring":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


@dataclass
class RingBuilder:
    """Mutable ring configuration; :meth:`rebalance` produces a :class:`Ring`.

    ``part_power`` fixes the partition count at ``2**part_power`` for the
    builder's lifetime (Swift's rule: pick it for the deployment's
    eventual size).  ``replicas`` is the replication factor N; a builder
    needs at least N devices with positive weight before it can balance.
    """

    part_power: int
    replicas: int = 1
    devices: Dict[int, Device] = field(default_factory=dict)
    #: Epoch of the last ring this builder produced; each
    #: :meth:`rebalance` hands out ``epoch + 1`` so layout versions stay
    #: monotone across the builder's whole life (and across save/load).
    epoch: int = 0
    _assignment: Optional[List[List[Optional[int]]]] = None

    def __post_init__(self) -> None:
        if not 1 <= self.part_power <= 32:
            raise ValueError(
                f"part_power must be in [1, 32], got {self.part_power}"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")

    @property
    def partitions(self) -> int:
        return 2 ** self.part_power

    # -- membership ----------------------------------------------------------

    def add_device(
        self,
        dev_id: Optional[int] = None,
        weight: float = 1.0,
        zone: int = 0,
        address: str = "",
    ) -> int:
        """Add a device; returns its id (auto-assigned when omitted)."""
        if dev_id is None:
            dev_id = max(self.devices, default=-1) + 1
        if dev_id in self.devices:
            raise ValueError(f"device {dev_id} already on the ring")
        self.devices[dev_id] = Device(dev_id, weight, zone, address)
        return dev_id

    def remove_device(self, dev_id: int) -> None:
        if dev_id not in self.devices:
            raise KeyError(f"device {dev_id} not on the ring")
        del self.devices[dev_id]

    def set_weight(self, dev_id: int, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"device weight must be non-negative, got {weight}")
        self.devices[dev_id].weight = weight

    def _active(self) -> List[Device]:
        return sorted(
            (d for d in self.devices.values() if d.weight > 0),
            key=lambda d: d.id,
        )

    # -- the rebalance -------------------------------------------------------

    def rebalance(self) -> Tuple[Ring, int]:
        """(Re)compute the assignment; returns ``(ring, moved_slots)``.

        ``moved_slots`` counts (partition, replica) slots whose device
        changed relative to the previous rebalance (0 on the first).
        """
        active = self._active()
        if len(active) < self.replicas:
            raise ValueError(
                f"need at least {self.replicas} devices with positive "
                f"weight, have {len(active)}"
            )
        total_weight = sum(d.weight for d in active)
        parts, replicas = self.partitions, self.replicas
        target = {
            d.id: parts * replicas * d.weight / total_weight for d in active
        }
        ceiling = {dev_id: math.ceil(t) for dev_id, t in target.items()}
        active_ids = set(target)

        old = self._assignment
        if old is None:
            new: List[List[Optional[int]]] = [
                [None] * replicas for _ in range(parts)
            ]
        else:
            new = [list(slots) for slots in old]

        # Pass 1: clear slots that are no longer legal — device gone,
        # weight zeroed, or the same device twice in one partition.
        load = {dev_id: 0 for dev_id in active_ids}
        for slots in new:
            seen = set()
            for r in range(replicas):
                dev_id = slots[r]
                if dev_id is None or dev_id not in active_ids or dev_id in seen:
                    slots[r] = None
                else:
                    seen.add(dev_id)
                    load[dev_id] += 1

        # Pass 2: trim overloaded devices down to ceil(target), freeing
        # slots from the highest partitions first (deterministic order).
        # At most one trim per partition per sweep, and partitions that
        # already have empty slots are trimmed only as a last resort:
        # freeing two slots of one partition forces the refill to pair
        # the incoming device with an old one (the distinct-replica
        # constraint), which would surface as a spurious old-to-old move.
        # A slot is freed only when some *underloaded* device could take
        # it (is not already in the partition), and only as many slots as
        # the underloaded devices can absorb — otherwise the refill would
        # hand freed slots to already-satisfied devices, i.e. churn.
        budget = sum(
            ceiling[d] - load[d] for d in active_ids if load[d] < ceiling[d]
        )
        max_free = 0
        while budget > 0 and max_free < replicas:
            if not any(load[d] > ceiling[d] for d in active_ids):
                break
            needy = {d for d in active_ids if load[d] < target[d]}
            freed_any = False
            for part in range(parts - 1, -1, -1):
                if budget <= 0:
                    break
                slots = new[part]
                if sum(1 for s in slots if s is None) > max_free:
                    continue
                present = {s for s in slots if s is not None}
                if not (needy - present):
                    continue  # no underloaded device may enter this partition
                for r in range(replicas - 1, -1, -1):
                    dev_id = slots[r]
                    if dev_id is not None and load[dev_id] > ceiling[dev_id]:
                        slots[r] = None
                        load[dev_id] -= 1
                        budget -= 1
                        freed_any = True
                        break  # one trim per partition per sweep
            if not freed_any:
                max_free += 1

        # Pass 3: fill every empty slot with the neediest legal device.
        for slots in new:
            present = {dev_id for dev_id in slots if dev_id is not None}
            for r in range(replicas):
                if slots[r] is not None:
                    continue
                best = None
                best_key = None
                for dev_id in active_ids:
                    if dev_id in present:
                        continue
                    key = (target[dev_id] - load[dev_id], -dev_id)
                    if best_key is None or key > best_key:
                        best, best_key = dev_id, key
                assert best is not None  # len(active) >= replicas
                slots[r] = best
                present.add(best)
                load[best] += 1

        moved = 0
        if old is not None:
            for part in range(parts):
                for r in range(replicas):
                    if old[part][r] is not None and old[part][r] != new[part][r]:
                        moved += 1
        self._assignment = new
        self.epoch += 1
        ring = Ring(
            self.part_power, replicas,
            {d.id: Device(d.id, d.weight, d.zone, d.address) for d in active},
            [[dev_id for dev_id in slots] for slots in new],
            epoch=self.epoch,
        )
        return ring, moved

    # -- serialization -------------------------------------------------------

    @classmethod
    def from_ring(cls, ring: Ring) -> "RingBuilder":
        """A builder whose state *is* the given ring — the stateless path
        a failover coordinator uses: reconstruct, mutate, rebalance, and
        the move list is minimal relative to the ring actually in force
        (no separately maintained builder file to drift out of sync).
        Partitions whose slot count fell below ``replicas`` (a degraded
        failover ring) load as empty slots the next rebalance refills."""
        builder = cls(ring.part_power, ring.replicas, epoch=ring.epoch)
        for device in ring.devices.values():
            builder.devices[device.id] = Device(
                device.id, device.weight, device.zone, device.address
            )
        builder._assignment = [
            list(slots) + [None] * (ring.replicas - len(slots))
            for slots in ring.assignment
        ]
        return builder

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT_VERSION,
            "part_power": self.part_power,
            "replicas": self.replicas,
            "epoch": self.epoch,
            "devices": [self.devices[d].as_dict() for d in sorted(self.devices)],
            "assignment": self._assignment,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RingBuilder":
        builder = cls(
            int(data["part_power"]), int(data["replicas"]),
            epoch=int(data.get("epoch", 0)),
        )
        for dev in data.get("devices", []):  # type: ignore[union-attr]
            device = Device.from_dict(dev)
            builder.devices[device.id] = device
        assignment = data.get("assignment")
        if assignment is not None:
            builder._assignment = [list(slots) for slots in assignment]  # type: ignore[union-attr]
        return builder

    def save(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(json.dumps(self.as_dict()))

    @classmethod
    def load_file(cls, path: Union[str, pathlib.Path]) -> "RingBuilder":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def uniform_ring(
    n_devices: int,
    part_power: int = 8,
    replicas: int = 1,
    device_ids: Optional[Sequence[int]] = None,
    addresses: Optional[Sequence[str]] = None,
) -> Ring:
    """An equal-weight ring over ``n_devices`` — the common quick path."""
    builder = RingBuilder(part_power, replicas)
    ids = list(device_ids) if device_ids is not None else list(range(n_devices))
    if len(ids) != n_devices:
        raise ValueError(f"need {n_devices} device ids, got {len(ids)}")
    for index, dev_id in enumerate(ids):
        address = addresses[index] if addresses is not None else ""
        builder.add_device(dev_id, weight=1.0, address=address)
    ring, _ = builder.rebalance()
    return ring
