"""Ring membership changes and handoff replay.

Growing (or shrinking, or reweighting) a deployment is a three-step
dance:

1. mutate the builder (``add_device`` / ``remove_device`` /
   ``set_weight``) and :meth:`~repro.ring.ring.RingBuilder.rebalance` —
   the builder keeps every still-legal assignment, so the resulting
   :class:`PartitionMove` list is minimal;
2. **replay the handoff**: copy every object whose partition moved from
   the old device to the new one *before* clients start routing by the
   new ring — a moved partition whose objects were not copied would
   serve initial values, which the checkers would flag as reads of
   values older than delta allows;
3. swap the ring atomically (routers re-read ``replicas_for`` per
   operation, so swapping the ``ring`` attribute is the cutover).

:class:`Rebalancer` packages the dance; :func:`replay_handoff` performs
step 2 over any placement transport (memory, simulator stores, TCP).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.ring.ring import Ring, RingBuilder


@dataclass(frozen=True)
class PartitionMove:
    """One replica slot that changed device in a rebalance."""

    partition: int
    replica: int  #: slot index within the partition (0 = primary)
    src: int  #: device that held the slot before
    dst: int  #: device that holds it now


@dataclass
class HandoffReport:
    """What a handoff replay actually copied."""

    moves: int
    partitions_touched: int
    objects_copied: int
    objects_missing: int  #: moved objects the source had never stored
    retries: int = 0  #: transient-failure retries that were attempted
    objects_from_snapshot: int = 0  #: copies served by the snapshot catalog


async def _with_retry(
    operation: Callable[[], Any],
    *,
    retries: int,
    backoff: float,
    max_backoff: float,
) -> Tuple[Any, int]:
    """Run ``operation`` with bounded retry and capped exponential
    backoff (the client clock-sync handshake discipline applied to
    handoff I/O).  Returns ``(result, retries_used)``; the final
    failure propagates.  :class:`KeyError` is a *definitive* answer
    ("this device never stored that object"), not a transient fault, so
    it propagates immediately."""
    wait = backoff
    used = 0
    for attempt in range(retries + 1):
        try:
            return await operation(), used
        except (asyncio.CancelledError, KeyError):
            raise
        except Exception:
            if attempt == retries:
                raise
            used += 1
            await asyncio.sleep(wait)
            wait = min(wait * 2.0, max_backoff)
    raise AssertionError("unreachable")


def diff_rings(old: Ring, new: Ring) -> List[PartitionMove]:
    """The slot-level difference between two rings of the same shape."""
    if old.partitions != new.partitions or old.replicas != new.replicas:
        raise ValueError(
            "rings differ in shape: "
            f"{old.partitions}x{old.replicas} vs {new.partitions}x{new.replicas}"
        )
    moves = []
    for part in range(old.partitions):
        before, after = old.assignment[part], new.assignment[part]
        for r in range(old.replicas):
            if before[r] != after[r]:
                moves.append(PartitionMove(part, r, before[r], after[r]))
    return moves


async def replay_handoff(
    moves: Iterable[PartitionMove],
    objects: Iterable[str],
    old_ring: Ring,
    transport: Any,
    *,
    snapshots: Optional[Any] = None,
    retries: int = 3,
    backoff: float = 0.05,
    max_backoff: float = 1.0,
) -> HandoffReport:
    """Copy every moved object from its old device to its new one.

    ``objects`` enumerates the namespace (the deployment's object
    catalog); each object is copied once per move of its partition.  A
    source read failure for an object the device never stored is counted
    but not fatal — the destination will serve the initial value, which
    is only correct for never-written objects, hence the counter.

    Each read and write is attempted up to ``1 + retries`` times with
    capped exponential backoff (``backoff`` doubling up to
    ``max_backoff``), so one transient connection error no longer aborts
    the whole handoff; the attempts used are summed in
    ``HandoffReport.retries``.

    ``snapshots``, when given, is a
    :class:`repro.store.SnapshotCatalog` (anything with
    ``read(device, obj)`` raising :class:`KeyError` for never-stored
    objects): source reads come from the durable stores instead of the
    source's live memory, so a rebalance away from a *crashed* device
    still copies real values.  An object the catalog lacks falls back to
    the live transport (the store may be newer than its catalog load).
    """
    moves = list(moves)
    by_partition: Dict[int, List[PartitionMove]] = {}
    for move in moves:
        by_partition.setdefault(move.partition, []).append(move)
    copied = missing = retried = from_snapshot = 0
    touched = set()
    _absent = object()
    for obj in objects:
        part = old_ring.partition_for(obj)
        for move in by_partition.get(part, ()):
            touched.add(part)
            value = _absent
            if snapshots is not None:
                try:
                    value = snapshots.read(move.src, obj)
                    from_snapshot += 1
                except KeyError:
                    pass  # not durably recorded: fall back to live memory
            if value is _absent:
                try:
                    value, used = await _with_retry(
                        lambda: transport.read(move.src, obj),
                        retries=retries, backoff=backoff,
                        max_backoff=max_backoff,
                    )
                    retried += used
                except asyncio.CancelledError:
                    raise
                except KeyError:
                    missing += 1  # definitive: never stored there
                    continue
                except Exception:
                    retried += retries  # exhausted the retry budget
                    missing += 1
                    continue
            send = value  # bind for the closure below
            _, used = await _with_retry(
                lambda: transport.write(move.dst, obj, send),
                retries=retries, backoff=backoff, max_backoff=max_backoff,
            )
            retried += used
            copied += 1
    return HandoffReport(
        moves=len(moves),
        partitions_touched=len(touched),
        objects_copied=copied,
        objects_missing=missing,
        retries=retried,
        objects_from_snapshot=from_snapshot,
    )


class Rebalancer:
    """Builder mutations + minimal-move computation + handoff, in one place.

    Keeps the *current* ring; every mutation returns ``(new_ring,
    moves)`` where ``moves`` is the exact slot-level diff.  The caller
    replays the handoff and then swaps its routers onto ``new_ring``.
    """

    def __init__(self, builder: RingBuilder, ring: Optional[Ring] = None) -> None:
        self.builder = builder
        if ring is None:
            ring, _ = builder.rebalance()
        self.ring = ring

    def _apply(
        self, mutate: Callable[[RingBuilder], None]
    ) -> Tuple[Ring, List[PartitionMove]]:
        mutate(self.builder)
        new_ring, _ = self.builder.rebalance()
        moves = diff_rings(self.ring, new_ring)
        self.ring = new_ring
        return new_ring, moves

    def add_device(
        self,
        dev_id: Optional[int] = None,
        weight: float = 1.0,
        zone: int = 0,
        address: str = "",
    ) -> Tuple[Ring, List[PartitionMove]]:
        return self._apply(
            lambda b: b.add_device(dev_id, weight=weight, zone=zone, address=address)
        )

    def remove_device(self, dev_id: int) -> Tuple[Ring, List[PartitionMove]]:
        return self._apply(lambda b: b.remove_device(dev_id))

    def set_weight(self, dev_id: int, weight: float) -> Tuple[Ring, List[PartitionMove]]:
        return self._apply(lambda b: b.set_weight(dev_id, weight))

    async def handoff(
        self,
        moves: Iterable[PartitionMove],
        objects: Iterable[str],
        old_ring: Ring,
        transport: Any,
        **kwargs: Any,
    ) -> HandoffReport:
        return await replay_handoff(
            moves, objects, old_ring, transport, **kwargs
        )
