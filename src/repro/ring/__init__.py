"""``repro.ring`` — consistent-hash sharding for the lifetime protocol.

The paper's Section 5 gives every object a single authoritative server;
the ``ObjectDirectory`` in :mod:`repro.protocol.server` is the seam where
a deployment decides *which* server that is.  This package fills the
seam with a Swift-style consistent-hash ring:

* :mod:`repro.ring.ring` — the partition ring itself: ``2**part_power``
  partitions, each assigned to ``replicas`` distinct weighted devices by
  a deterministic builder (``RingBuilder``), addressed by a stable
  md5-based object hash (no interpreter ``hash()`` randomization);
* :mod:`repro.ring.placement` — replicated placement over a ring:
  primary-plus-replica write fan-out with W-of-N acks, primary-first
  read routing with replica fallback, and delta-bounded anti-entropy
  that re-pushes a version to lagging replicas before its lifetime
  expires;
* :mod:`repro.ring.rebalance` — device add/remove/reweight with the
  minimal partition moves, plus handoff replay to copy moved objects.

The simulator consumes the ring through ``ObjectDirectory`` (placement
only: each object keeps a single authoritative primary, which is what
the protocol's correctness argument needs); the TCP stack consumes it
through :class:`repro.net.ring_router.RingRouter`, which adds real
replication on top.  docs/RING.md walks through the format and the
epsilon/delta composition across multiple server clocks.
"""

from repro.ring.placement import (
    MemoryTransport,
    PlacementError,
    PlacementStats,
    ReadOutcome,
    RepairTask,
    ReplicatedPlacement,
    WriteOutcome,
)
from repro.ring.rebalance import (
    HandoffReport,
    PartitionMove,
    Rebalancer,
    diff_rings,
    replay_handoff,
)
from repro.ring.ring import Device, Ring, RingBuilder, stable_hash, uniform_ring

__all__ = [
    "Device",
    "Ring",
    "RingBuilder",
    "stable_hash",
    "uniform_ring",
    "ReplicatedPlacement",
    "MemoryTransport",
    "PlacementError",
    "PlacementStats",
    "ReadOutcome",
    "WriteOutcome",
    "RepairTask",
    "Rebalancer",
    "PartitionMove",
    "HandoffReport",
    "diff_rings",
    "replay_handoff",
]
