"""Replicated placement over a ring: W-of-N writes, fallback reads,
delta-bounded anti-entropy.

The lifetime protocol's single-authority argument survives replication
because the ring's *primary* stays the authority: a write completes only
once the primary has installed it (the primary's install time is the
write's effective time), and reads route primary-first.  The replicas
exist for availability and read spreading; the freshness contract on a
replica is the timed one — a replica that missed a write must receive it
within the freshness bound ``delta``, i.e. before the superseded
version's lifetime ``X_i^omega`` can still satisfy a ``delta``-bounded
read.  That is what the anti-entropy queue enforces: every fan-out copy
that failed is re-pushed with a deadline of ``write time + delta``.

The transport is duck-typed so the same engine drives the in-memory
stores of the tests, the simulator, and the TCP stack's per-device
:class:`~repro.net.client.NetCacheClient` connections:

    async def write(device_id, obj, value) -> float   # install time
    async def read(device_id, obj) -> value

A transport may additionally accept ``write(..., dedup=<token>)``: the
engine then tags every fan-out copy (and its anti-entropy re-pushes)
with one token per logical write, so a dedup-aware transport can retry
idempotently — the TCP transport maps the token to a pinned request id
and the server's reply cache replays a lost ack instead of
re-installing.  Plain 3-argument transports keep working unchanged.

Transport failures must surface as exceptions (``ConnectionError``,
:class:`repro.net.client.NetError`, ...); any exception from a replica
write queues a repair, any exception from a read triggers fallback to
the next replica.
"""

from __future__ import annotations

import asyncio
import inspect
import math
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.ring.ring import Ring


class PlacementError(Exception):
    """A placement operation could not complete (primary unreachable,
    every replica failed, ...)."""


@dataclass
class PlacementStats:
    """Counters a cluster report or bench sums up."""

    writes: int = 0
    reads: int = 0
    fallback_reads: int = 0  #: reads served by a non-primary replica
    replica_acks: int = 0
    quorum_failures: int = 0  #: writes that finished below the W quorum
    repairs_queued: int = 0
    repairs_done: int = 0
    repairs_late: int = 0  #: repairs completed after their delta deadline

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class WriteOutcome:
    """One replicated write, as seen by the caller."""

    obj: str
    value: Any
    alpha: float  #: the primary's install time (the write's effective time)
    acked: Dict[int, float]  #: device id -> that device's install time
    failed: Tuple[int, ...]  #: devices whose copy failed and was queued
    quorum: int
    #: The device that actually served as primary for this write.  The
    #: caller must rebase ``alpha`` with *this* device's clock offset —
    #: re-asking the ring after the fact races a concurrent ``swap_ring``.
    primary: int = -1

    @property
    def quorum_met(self) -> bool:
        return len(self.acked) >= self.quorum


@dataclass
class ReadOutcome:
    """One routed read: the value and which device served it."""

    obj: str
    value: Any
    device: int
    fallbacks: int  #: how many replicas failed before this one answered


@dataclass
class RepairTask:
    """A replica copy that must be re-pushed before ``deadline``.

    ``dedup`` carries the originating write's dedup token: a re-push is
    a *retry* of the original fan-out copy, so a dedup-aware transport
    reuses the same request id and a copy whose ack was merely lost is
    replayed (original ``alpha``) instead of installed twice.
    """

    device: int
    obj: str
    value: Any
    created: float
    deadline: float
    attempts: int = 0
    dedup: Optional[str] = None


class ReplicatedPlacement:
    """Primary-plus-replica routing for one ring.

    ``write_quorum`` (W) is the number of acks a write waits for before
    returning; it defaults to all N replicas of the object's partition.
    The primary's ack is always required — W only varies how many of the
    *other* replicas may lag.  Stragglers keep running in the background:
    a late ack is recorded, a late failure queues an anti-entropy repair
    with deadline ``write time + delta``.

    ``clock`` supplies "now" for deadlines (defaults to the running event
    loop's clock); the TCP router passes its reference-synchronized clock
    so deadlines live on the merged trace's timescale.
    """

    def __init__(
        self,
        ring: Ring,
        transport: Any,
        *,
        write_quorum: Optional[int] = None,
        delta: float = math.inf,
        clock: Optional[Callable[[], float]] = None,
        max_repair_attempts: int = 8,
    ) -> None:
        if write_quorum is not None and write_quorum < 1:
            raise ValueError(f"write_quorum must be >= 1, got {write_quorum}")
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.ring = ring
        self.transport = transport
        self.write_quorum = write_quorum
        self.delta = delta
        self._clock = clock
        self.max_repair_attempts = max_repair_attempts
        self.stats = PlacementStats()
        self.repairs: List[RepairTask] = []
        self._stragglers: List[asyncio.Task] = []
        self._write_seq = 0
        self._dedup_aware: Optional[bool] = None

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:
            return time.monotonic()

    def _transport_write(
        self, dev: int, obj: str, value: Any, dedup: Optional[str]
    ) -> Awaitable[float]:
        """Write through the transport, passing the dedup token when the
        transport understands it (duck-typed: plain 3-argument
        transports keep working, just without idempotent retries)."""
        if self._dedup_aware is None:
            try:
                params = inspect.signature(self.transport.write).parameters
                self._dedup_aware = "dedup" in params or any(
                    p.kind is inspect.Parameter.VAR_KEYWORD
                    for p in params.values()
                )
            except (TypeError, ValueError):
                self._dedup_aware = False
        if self._dedup_aware and dedup is not None:
            return self.transport.write(dev, obj, value, dedup=dedup)
        return self.transport.write(dev, obj, value)

    def quorum_for(self, n_replicas: int) -> int:
        if self.write_quorum is None:
            return n_replicas
        return min(self.write_quorum, n_replicas)

    # -- writes ---------------------------------------------------------------

    async def write(self, obj: str, value: Any) -> WriteOutcome:
        """Fan the write out to the object's replica set; W-of-N acks."""
        self.stats.writes += 1
        devices = self.ring.replicas_for(obj)
        primary = devices[0]
        quorum = self.quorum_for(len(devices))
        started = self._now()
        # One token per logical write: every fan-out copy (and any
        # later anti-entropy re-push of it) retries under the same
        # per-device request id, so a lost ack replays instead of
        # installing a second version.
        self._write_seq += 1
        token = f"{obj}#{self._write_seq}"
        tasks = {
            asyncio.ensure_future(
                self._transport_write(dev, obj, value, token)
            ): dev
            for dev in devices
        }
        acked: Dict[int, float] = {}
        failed: List[int] = []
        pending = set(tasks)
        while pending and not (len(acked) >= quorum and primary in acked):
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                dev = tasks[task]
                exc = task.exception()
                if exc is None:
                    acked[dev] = task.result()
                    if dev != primary:
                        self.stats.replica_acks += 1
                else:
                    failed.append(dev)
                    self._queue_repair(dev, obj, value, started, token)
        # Stragglers past the quorum run on; their outcome is recorded
        # (late ack) or repaired (late failure) when they resolve.
        for task in pending:
            dev = tasks[task]
            task.add_done_callback(
                self._straggler_done(dev, primary, obj, value, started, token)
            )
            self._stragglers.append(task)
        if primary not in acked:
            raise PlacementError(
                f"write of {obj!r} lost its primary (device {primary}); "
                f"acks from {sorted(acked)}"
            )
        if len(acked) < quorum and not pending:
            self.stats.quorum_failures += 1
        return WriteOutcome(
            obj=obj, value=value, alpha=acked[primary],
            acked=acked, failed=tuple(failed), quorum=quorum,
            primary=primary,
        )

    def _straggler_done(
        self, dev: int, primary: int, obj: str, value: Any, started: float,
        token: Optional[str] = None,
    ) -> Callable[[asyncio.Task], None]:
        def _on_done(task: asyncio.Task) -> None:
            if task in self._stragglers:
                self._stragglers.remove(task)
            if task.cancelled():
                return
            if task.exception() is None:
                if dev != primary:
                    self.stats.replica_acks += 1
            else:
                self._queue_repair(dev, obj, value, started, token)

        return _on_done

    def _queue_repair(
        self, dev: int, obj: str, value: Any, started: float,
        token: Optional[str] = None,
    ) -> None:
        deadline = started + self.delta if not math.isinf(self.delta) else math.inf
        # One outstanding repair per (device, object): a newer value
        # supersedes the queued one (and carries the newer write's
        # dedup token — the superseded copy must not be replayed).
        for task in self.repairs:
            if task.device == dev and task.obj == obj:
                task.value = value
                task.created = started
                task.deadline = deadline
                task.attempts = 0
                task.dedup = token
                return
        self.repairs.append(
            RepairTask(dev, obj, value, started, deadline, dedup=token)
        )
        self.stats.repairs_queued += 1

    # -- reads ----------------------------------------------------------------

    async def read(self, obj: str) -> ReadOutcome:
        """Primary-first read with replica fallback."""
        self.stats.reads += 1
        devices = self.ring.replicas_for(obj)
        errors: List[str] = []
        for index, dev in enumerate(devices):
            try:
                value = await self.transport.read(dev, obj)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # transport failure: try the next replica
                errors.append(f"device {dev}: {exc!r}")
                continue
            if index > 0:
                self.stats.fallback_reads += 1
            return ReadOutcome(obj=obj, value=value, device=dev, fallbacks=index)
        raise PlacementError(
            f"read of {obj!r} failed on every replica: " + "; ".join(errors)
        )

    # -- anti-entropy ----------------------------------------------------------

    def pending_repairs(self) -> List[RepairTask]:
        return list(self.repairs)

    async def repair_once(self) -> int:
        """One anti-entropy round: re-push every queued copy
        *concurrently* (one slow replica must not delay the others past
        their delta deadlines); returns how many repairs completed.  A
        repair finishing after its deadline is counted in
        ``stats.repairs_late`` — the delta bound was missed (fault
        injection can force this; healthy runs keep it at 0).  Re-pushes
        reuse the originating write's dedup token, so retrying a copy
        whose ack was lost replays the original install."""
        round_tasks = [
            (task, asyncio.ensure_future(
                self._transport_write(task.device, task.obj, task.value, task.dedup)
            ))
            for task in list(self.repairs)
        ]
        for task, _ in round_tasks:
            task.attempts += 1
        results = await asyncio.gather(
            *(fut for _, fut in round_tasks), return_exceptions=True
        )
        completed = 0
        for (task, _), result in zip(round_tasks, results):
            if isinstance(result, asyncio.CancelledError):
                raise result
            if isinstance(result, BaseException):
                if (
                    task.attempts >= self.max_repair_attempts
                    and task in self.repairs
                ):
                    self.repairs.remove(task)  # give up; surfaced in stats
                continue
            if task in self.repairs:  # not superseded mid-round
                self.repairs.remove(task)
            self.stats.repairs_done += 1
            if self._now() > task.deadline:
                self.stats.repairs_late += 1
            completed += 1
        return completed

    async def anti_entropy_loop(self, period: float) -> None:
        """Run :meth:`repair_once` forever, every ``period`` seconds."""
        while True:
            await asyncio.sleep(period)
            await self.repair_once()

    async def drain(self) -> None:
        """Await straggler writes (test/shutdown hygiene)."""
        while self._stragglers:
            await asyncio.gather(*list(self._stragglers), return_exceptions=True)


class MemoryTransport:
    """In-process dict-backed stores — the placement engine's test double.

    Each device is a ``{obj: (value, install_time)}`` dict; ``down``
    devices raise ``ConnectionError``; ``write_delay`` slows one device's
    writes to exercise W-of-N straggling.
    """

    def __init__(
        self,
        device_ids,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.stores: Dict[int, Dict[str, Tuple[Any, float]]] = {
            dev: {} for dev in device_ids
        }
        self.down: set = set()
        self.write_delay: Dict[int, float] = {}
        self._clock = clock
        self.write_log: List[Tuple[int, str, Any]] = []
        self._dedup_done: Dict[Tuple[int, str], float] = {}

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:
            return time.monotonic()

    async def write(
        self, device_id: int, obj: str, value: Any,
        dedup: Optional[str] = None,
    ) -> float:
        delay = self.write_delay.get(device_id, 0.0)
        if delay:
            await asyncio.sleep(delay)
        if device_id in self.down:
            raise ConnectionError(f"device {device_id} is down")
        # Exactly-once by token: a retried copy replays its original
        # install time instead of re-installing (the in-memory analogue
        # of the TCP server's reply cache).
        if dedup is not None:
            key = (device_id, dedup)
            done = self._dedup_done.get(key)
            if done is not None:
                return done
        alpha = self._now()
        self.stores[device_id][obj] = (value, alpha)
        self.write_log.append((device_id, obj, value))
        if dedup is not None:
            self._dedup_done[(device_id, dedup)] = alpha
        return alpha

    async def read(self, device_id: int, obj: str) -> Any:
        if device_id in self.down:
            raise ConnectionError(f"device {device_id} is down")
        entry = self.stores[device_id].get(obj)
        if entry is None:
            raise KeyError(f"device {device_id} has no {obj!r}")
        return entry[0]
