"""Seeded randomness for experiments.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so adding a new component never perturbs the draws
of existing ones — a standard discipline for reproducible simulation
studies.

Also provides the distribution samplers the workloads need (exponential
inter-arrival times, Zipf object popularity, log-normal latencies) without
depending on numpy, so the core library stays dependency-free.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List, Sequence


class RngRegistry:
    """A family of independent named random streams under one seed.

    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("workload")
    >>> b = rngs.stream("network")
    >>> a is rngs.stream("workload")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            # Stable derivation: hash the name through Random itself.
            derived = random.Random(f"{self.seed}:{name}").getrandbits(64)
            self._streams[name] = random.Random(derived)
        return self._streams[name]


class ZipfSampler:
    """Zipf-distributed ranks over ``n`` items with exponent ``alpha``.

    P(rank k) proportional to ``1 / k**alpha`` for k = 1..n.  Sampling is
    by inverse CDF over the precomputed cumulative weights (O(log n) per
    draw).  Web object popularity is famously Zipf-like, which is all the
    web-cache experiments need (see DESIGN.md's substitution table).
    """

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = [1.0 / (k**alpha) for k in range(1, n + 1)]
        total = 0.0
        self._cdf: List[float] = []
        for w in weights:
            total += w
            self._cdf.append(total)
        self._total = total

    def sample(self) -> int:
        """Draw a 0-based item index (0 is the most popular)."""
        u = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)


def exponential(rng: random.Random, rate: float) -> float:
    """An exponential inter-arrival time with the given rate (mean 1/rate)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return rng.expovariate(rate)


def lognormal(rng: random.Random, median: float, sigma: float) -> float:
    """A log-normal sample parameterized by its median (heavy-tailed
    latencies and page-modification intervals)."""
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    return median * math.exp(rng.gauss(0.0, sigma))


def bounded(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into [low, high]."""
    return max(low, min(high, value))


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item with the given (unnormalized) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    u = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if u <= acc:
            return item
    return items[-1]
