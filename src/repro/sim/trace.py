"""Execution tracing: turn simulated runs into :class:`History` objects.

Protocol nodes report their reads and writes here with the *true*
simulated time as the effective time (the simulator is the ground-truth
clock even when the node's own physical clock is skewed — exactly the
distinction Definitions 1 vs 2 care about).  The recorded history then
feeds the checkers, closing the loop: protocol -> execution -> criterion.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.clocks.base import LogicalTimestamp
from repro.core.history import History
from repro.core.operations import Operation, read, write


class TraceRecorder:
    """Accumulates operations during a simulation run.

    ``listeners`` are called with each operation as it is recorded (in
    completion order, which is non-decreasing *recording* time but not
    necessarily effective-time order — see
    :class:`repro.checkers.online.ReorderingMonitor` for live checking).
    """

    def __init__(self, initial_value: Any = 0) -> None:
        self.operations: List[Operation] = []
        self.initial_value = initial_value
        self.listeners: List = []

    def add_listener(self, listener) -> None:
        """Register a callable invoked as ``listener(op)`` per operation."""
        self.listeners.append(listener)

    def _emit(self, op: Operation) -> Operation:
        self.operations.append(op)
        for listener in self.listeners:
            listener(op)
        return op

    def record_read(
        self,
        site: int,
        obj: str,
        value: Any,
        time: float,
        ltime: Optional[LogicalTimestamp] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Operation:
        return self._emit(
            read(site, obj, value, time, ltime=ltime, start=start, end=end)
        )

    def record_write(
        self,
        site: int,
        obj: str,
        value: Any,
        time: float,
        ltime: Optional[LogicalTimestamp] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Operation:
        return self._emit(
            write(site, obj, value, time, ltime=ltime, start=start, end=end)
        )

    def history(self, validate: bool = True) -> History:
        """Snapshot the trace as a :class:`History`."""
        return History(
            self.operations, initial_value=self.initial_value, validate=validate
        )

    def clear(self) -> None:
        self.operations.clear()

    def __len__(self) -> int:
        return len(self.operations)


class UniqueValueFactory:
    """Produces globally unique written values (the paper's assumption).

    Values encode the writing site and a per-factory counter, so traces
    stay human-readable: ``v(site=2,n=7)`` -> ``"s2.7"``.
    """

    def __init__(self) -> None:
        self._counter = 0

    def next_value(self, site: int) -> str:
        self._counter += 1
        return f"s{site}.{self._counter}"
