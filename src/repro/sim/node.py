"""Base class for simulated sites (protocol nodes)."""

from __future__ import annotations

from typing import Optional

from repro.clocks.physical import PerfectClock, PhysicalClock
from repro.sim.kernel import Simulator
from repro.sim.network import Message, Network


class Node:
    """A site in the simulated system.

    Holds the node id, references to the simulator and network, and the
    node's *local* physical clock (which may be skewed or drifting; the
    simulator's own time is the ground truth used for effective times).
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        clock: Optional[PhysicalClock] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.clock = clock or PerfectClock(sim.time_source())
        network.register(self)

    def local_time(self) -> float:
        """This node's own clock reading (``t_i`` in the protocol rules)."""
        return self.clock.now()

    def send(self, dst: int, kind: str, payload=None, size: int = 1) -> Message:
        return self.network.send(self.node_id, dst, kind, payload, size)

    def on_message(self, message: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} does not handle messages"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id})"
