"""Simulated message-passing network with pluggable latency models.

Nodes exchange :class:`Message` envelopes; the network samples a delivery
latency per message from a :class:`LatencyModel` (optionally dropping a
fraction), counts traffic for the cost benches, and delivers by invoking
``on_message`` on the destination node.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol

from repro.sim.kernel import Simulator
from repro.sim.rng import lognormal


@dataclass
class Message:
    """An envelope: source, destination, a type tag and a payload dict."""

    src: int
    dst: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    send_time: float = 0.0
    size: int = 1

    def __repr__(self) -> str:
        return f"Message({self.kind} {self.src}->{self.dst} @{self.send_time:g})"


class Receiver(Protocol):
    """Anything that can receive messages from the network."""

    node_id: int

    def on_message(self, message: Message) -> None:
        ...


class LatencyModel(ABC):
    """Samples a one-way delivery latency per message."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        ...


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``latency`` seconds."""

    def __init__(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.latency = latency

    def sample(self, rng: random.Random) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Uniform in [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency: ``base + LogNormal(median, sigma)``."""

    def __init__(self, median: float, sigma: float = 0.5, base: float = 0.0) -> None:
        self.median = median
        self.sigma = sigma
        self.base = base

    def sample(self, rng: random.Random) -> float:
        return self.base + lognormal(rng, self.median, self.sigma)


@dataclass
class NetworkStats:
    """Traffic counters for the cost benches."""

    messages_sent: int = 0
    messages_dropped: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1


class Network:
    """Delivers messages between registered nodes through the simulator.

    ``drop_probability`` models an unreliable network (messages vanish);
    protocol layers that need reliability must retry.  Per-message latency
    comes from ``latency_model`` via the seeded ``rng``.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_model: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability}")
        self.sim = sim
        self.latency_model = latency_model or ConstantLatency(0.01)
        self.rng = rng or random.Random(0)
        self.drop_probability = drop_probability
        self.nodes: Dict[int, Receiver] = {}
        self.stats = NetworkStats()
        self._partitioned: set = set()

    def register(self, node: Receiver) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self.nodes[node.node_id] = node

    def send(self, src: int, dst: int, kind: str, payload=None, size: int = 1) -> Message:
        """Send a message; delivery is scheduled after a sampled latency."""
        if dst not in self.nodes:
            raise KeyError(f"unknown destination node {dst}")
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload or {},
            send_time=self.sim.now,
            size=size,
        )
        self.stats.record_send(message)
        if src in self._partitioned or dst in self._partitioned:
            self.stats.messages_dropped += 1
            return message
        if self.drop_probability and self.rng.random() < self.drop_probability:
            self.stats.messages_dropped += 1
            return message
        latency = self.latency_model.sample(self.rng)
        self.sim.schedule(latency, self._deliver, message)
        return message

    def _deliver(self, message: Message) -> None:
        self.stats.messages_delivered += 1
        self.nodes[message.dst].on_message(message)

    def partition(self, node_id: int) -> None:
        """Disconnect a node: every message to or from it is dropped
        until :meth:`heal` (models mobile disconnection, Section 4's
        CC-suits-mobility discussion)."""
        self._partitioned.add(node_id)

    def heal(self, node_id: int) -> None:
        """Reconnect a previously partitioned node."""
        self._partitioned.discard(node_id)

    def is_partitioned(self, node_id: int) -> bool:
        return node_id in self._partitioned

    def broadcast(self, src: int, kind: str, payload=None, size: int = 1) -> int:
        """Send to every registered node except the source; returns count."""
        count = 0
        for node_id in sorted(self.nodes):
            if node_id != src:
                self.send(src, node_id, kind, payload, size)
                count += 1
        return count
