"""An asyncio implementation of the timed (TSC) cache protocol.

Everything else in this repository runs on the deterministic
discrete-event simulator, where effective times and epsilon are exact.
This module is the *live* counterpart: the same lifetime rules
(Sections 5.1-5.2) implemented over real ``asyncio`` concurrency and the
wall clock, with artificial network latency injected via
``asyncio.sleep``.  It exists to show the protocol is not an artifact of
simulation — the recorded executions pass the same checkers — at the cost
of timing precision (wall-clock scheduling jitter), which is why the
quantitative experiments stay on the simulator.

Both halves drive the shared engines of :mod:`repro.engine` — the same
:class:`~repro.engine.ServerEngine` install/validate logic and
:class:`~repro.engine.CacheEngine` lifetime rules that the simulator and
TCP stacks run — wrapped here in asyncio latency and locking only.

The clock is ``loop.time()`` rebased to 0 at session start; all deltas
and latencies are in (real) seconds, so keep them small in tests.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.clocks.rebase import RebasedClock
from repro.core.history import History
from repro.engine import CacheEngine, ServerEngine
from repro.protocol.stats import ClientStats
from repro.protocol.versions import CacheEntry, PhysicalVersion
from repro.sim.trace import TraceRecorder, UniqueValueFactory


class AioObjectServer:
    """Authoritative in-process store with injected request latency —
    an asyncio driver over :class:`repro.engine.ServerEngine`."""

    def __init__(self, latency: float = 0.002, initial_value: Any = 0) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.latency = latency
        self.initial_value = initial_value
        self._lock = asyncio.Lock()
        self.engine = ServerEngine(lambda: 0.0, initial_value=initial_value)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.engine.clock = clock

    @property
    def store(self) -> Dict[str, PhysicalVersion]:
        return self.engine.store

    @property
    def requests(self) -> int:
        return self.engine.requests

    def _current(self, obj: str) -> PhysicalVersion:
        return self.engine.current(obj)

    async def fetch(self, obj: str) -> PhysicalVersion:
        await asyncio.sleep(self.latency)
        async with self._lock:
            self.engine.requests += 1
            return self.engine.current(obj).copy()

    async def validate(self, obj: str, alpha: float):
        """Returns ``("valid", omega)`` or ``("version", version)``."""
        await asyncio.sleep(self.latency)
        async with self._lock:
            self.engine.requests += 1
            version = self.engine.current(obj)
            if version.alpha == alpha:
                return ("valid", version.omega)
            return ("version", version.copy())

    async def write(self, obj: str, value: Any, writer: int) -> PhysicalVersion:
        """Install synchronously; the install instant is the effective time.

        The returned version always describes *this* write (the writer
        keeps its own value cached even in the measure-zero case of an
        exact install-time tie, which is SC-safe: its reads serialize
        before the winner's).
        """
        await asyncio.sleep(self.latency)
        async with self._lock:
            self.engine.requests += 1
            version, _ = self.engine.install(obj, value, writer)
            return version


class AioTimedCacheClient:
    """The TSC cache client (rules 1-3) over asyncio — a driver over
    :class:`repro.engine.CacheEngine`."""

    def __init__(
        self,
        client_id: int,
        server: AioObjectServer,
        clock: Callable[[], float],
        delta: float = math.inf,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.client_id = client_id
        self.server = server
        self.clock = clock
        self.recorder = recorder
        self.stats = ClientStats()
        self.engine = CacheEngine(site_id=client_id, delta=delta, stats=self.stats)

    @property
    def cache(self) -> Dict[str, CacheEntry]:
        return self.engine.cache

    @property
    def context(self) -> float:
        return self.engine.context

    @property
    def delta(self) -> float:
        return self.engine.delta

    async def read(self, obj: str) -> Any:
        self.stats.reads += 1
        self.engine.rule3(self.clock())
        decision = self.engine.lookup(obj, None)
        if decision.hit:
            self._record_read(obj, decision.value)
            return decision.value
        if decision.action == "validate":
            kind, payload = await self.server.validate(obj, decision.alpha)
            if kind == "valid":
                _, value = self.engine.apply_still_valid(obj, payload)
                self.stats.revalidated += 1
            else:
                self.engine.install_fetched(payload, self.clock())
                self.stats.refreshed += 1
                value = payload.value
        else:
            version = await self.server.fetch(obj)
            self.engine.install_fetched(version, self.clock())
            value = version.value
        self._record_read(obj, value)
        return value

    async def write(self, obj: str, value: Any) -> float:
        self.stats.writes += 1
        version = await self.server.write(obj, value, self.client_id)
        self.engine.apply_write_ack(obj, value, version.alpha, self.clock())
        if self.recorder is not None:
            self.recorder.record_write(self.client_id, obj, value, version.alpha)
        return version.alpha

    def _record_read(self, obj: str, value: Any) -> None:
        if self.recorder is not None:
            self.recorder.record_read(self.client_id, obj, value, self.clock())


class AioSession:
    """One live deployment: a server, N clients, a shared rebased clock.

    >>> async def workload(session, client):
    ...     await client.write("x", session.values.next_value(client.client_id))
    ...     await client.read("x")
    """

    def __init__(
        self,
        n_clients: int,
        delta: float = math.inf,
        latency: float = 0.002,
        initial_value: Any = 0,
    ) -> None:
        self.server = AioObjectServer(latency=latency, initial_value=initial_value)
        self.recorder = TraceRecorder(initial_value=initial_value)
        self.values = UniqueValueFactory()
        self._clock = RebasedClock()
        self.clients = [
            AioTimedCacheClient(
                i, self.server, self.now, delta=delta, recorder=self.recorder
            )
            for i in range(n_clients)
        ]
        self.server.bind_clock(self.now)

    def now(self) -> float:
        return self._clock.now()

    async def run(
        self,
        workload: Callable[["AioSession", AioTimedCacheClient], Awaitable[None]],
    ) -> History:
        """Run one workload coroutine per client, concurrently."""
        self.now()  # pin t0 before anyone starts
        await asyncio.gather(*(workload(self, client) for client in self.clients))
        return self.recorder.history()

    def aggregate_stats(self) -> ClientStats:
        total = ClientStats()
        for client in self.clients:
            total = total.merge(client.stats)
        return total


def run_aio_session(
    n_clients: int,
    workload: Callable[[AioSession, AioTimedCacheClient], Awaitable[None]],
    delta: float = math.inf,
    latency: float = 0.002,
) -> Tuple[History, AioSession]:
    """Convenience wrapper: build a session, drive it with asyncio.run,
    and return both the recorded history and the session (for stats)."""
    session = AioSession(n_clients, delta=delta, latency=latency)
    history = asyncio.run(session.run(workload))
    return history, session
