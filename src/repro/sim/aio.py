"""An asyncio implementation of the timed (TSC) cache protocol.

Everything else in this repository runs on the deterministic
discrete-event simulator, where effective times and epsilon are exact.
This module is the *live* counterpart: the same lifetime rules
(Sections 5.1-5.2) implemented over real ``asyncio`` concurrency and the
wall clock, with artificial network latency injected via
``asyncio.sleep``.  It exists to show the protocol is not an artifact of
simulation — the recorded executions pass the same checkers — at the cost
of timing precision (wall-clock scheduling jitter), which is why the
quantitative experiments stay on the simulator.

The clock is ``loop.time()`` rebased to 0 at session start; all deltas
and latencies are in (real) seconds, so keep them small in tests.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.clocks.rebase import RebasedClock
from repro.core.history import History
from repro.protocol.stats import ClientStats
from repro.protocol.versions import CacheEntry, PhysicalVersion
from repro.sim.trace import TraceRecorder, UniqueValueFactory


class AioObjectServer:
    """Authoritative in-process store with injected request latency."""

    def __init__(self, latency: float = 0.002, initial_value: Any = 0) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.latency = latency
        self.initial_value = initial_value
        self.store: Dict[str, PhysicalVersion] = {}
        self._lock = asyncio.Lock()
        self._clock: Callable[[], float] = lambda: 0.0
        self.requests = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def _current(self, obj: str) -> PhysicalVersion:
        if obj not in self.store:
            self.store[obj] = PhysicalVersion(
                obj, self.initial_value, alpha=0.0, omega=0.0, writer=-1
            )
        version = self.store[obj]
        version.advance_omega(self._clock())
        return version

    async def fetch(self, obj: str) -> PhysicalVersion:
        await asyncio.sleep(self.latency)
        async with self._lock:
            self.requests += 1
            return self._current(obj).copy()

    async def validate(self, obj: str, alpha: float):
        """Returns ``("valid", omega)`` or ``("version", version)``."""
        await asyncio.sleep(self.latency)
        async with self._lock:
            self.requests += 1
            version = self._current(obj)
            if version.alpha == alpha:
                return ("valid", version.omega)
            return ("version", version.copy())

    async def write(self, obj: str, value: Any, writer: int) -> PhysicalVersion:
        """Install synchronously; the install instant is the effective time.

        The returned version always describes *this* write (the writer
        keeps its own value cached even in the measure-zero case of an
        exact install-time tie, which is SC-safe: its reads serialize
        before the winner's).
        """
        await asyncio.sleep(self.latency)
        async with self._lock:
            self.requests += 1
            install_time = self._clock()
            version = PhysicalVersion(obj, value, install_time, install_time, writer)
            current = self.store.get(obj)
            if current is None or install_time > current.alpha:
                self.store[obj] = version.copy()
            return version


class AioTimedCacheClient:
    """The TSC cache client (rules 1-3) over asyncio."""

    def __init__(
        self,
        client_id: int,
        server: AioObjectServer,
        clock: Callable[[], float],
        delta: float = math.inf,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.client_id = client_id
        self.server = server
        self.clock = clock
        self.delta = delta
        self.recorder = recorder
        self.cache: Dict[str, CacheEntry] = {}
        self.context = 0.0
        self.stats = ClientStats()

    def _advance_context(self, candidate: float) -> None:
        if candidate <= self.context:
            return
        self.context = candidate
        for entry in self.cache.values():
            if entry.version.omega < self.context:
                entry.mark_old()

    async def read(self, obj: str) -> Any:
        self.stats.reads += 1
        if not math.isinf(self.delta):
            self._advance_context(self.clock() - self.delta)
        entry = self.cache.get(obj)
        if entry is not None and not entry.old and entry.version.omega >= self.context:
            self.stats.fresh_hits += 1
            value = entry.version.value
            self._record_read(obj, value)
            return value
        if entry is not None:
            self.stats.validations += 1
            kind, payload = await self.server.validate(obj, entry.version.alpha)
            if kind == "valid":
                entry.version.advance_omega(payload)
                entry.old = False
                self.stats.revalidated += 1
                value = entry.version.value
            else:
                self._install(payload)
                self.stats.refreshed += 1
                value = payload.value
        else:
            self.stats.fetches += 1
            version = await self.server.fetch(obj)
            self._install(version)
            value = version.value
        self._record_read(obj, value)
        return value

    async def write(self, obj: str, value: Any) -> float:
        self.stats.writes += 1
        version = await self.server.write(obj, value, self.client_id)
        self._advance_context(version.alpha)
        entry = self.cache.get(obj)
        if entry is None:
            self.cache[obj] = CacheEntry(version, fetched_at=self.clock())
        else:
            entry.refresh(version, self.clock())
        if self.recorder is not None:
            self.recorder.record_write(self.client_id, obj, value, version.alpha)
        return version.alpha

    def _install(self, version: PhysicalVersion) -> None:
        if version.omega < self.context:
            self.stats.fetch_check_failures += 1
            version.advance_omega(self.context)
        self._advance_context(version.alpha)
        entry = self.cache.get(version.obj)
        if entry is None:
            self.cache[version.obj] = CacheEntry(version, fetched_at=self.clock())
        else:
            entry.refresh(version, self.clock())

    def _record_read(self, obj: str, value: Any) -> None:
        if self.recorder is not None:
            self.recorder.record_read(self.client_id, obj, value, self.clock())


class AioSession:
    """One live deployment: a server, N clients, a shared rebased clock.

    >>> async def workload(session, client):
    ...     await client.write("x", session.values.next_value(client.client_id))
    ...     await client.read("x")
    """

    def __init__(
        self,
        n_clients: int,
        delta: float = math.inf,
        latency: float = 0.002,
        initial_value: Any = 0,
    ) -> None:
        self.server = AioObjectServer(latency=latency, initial_value=initial_value)
        self.recorder = TraceRecorder(initial_value=initial_value)
        self.values = UniqueValueFactory()
        self._clock = RebasedClock()
        self.clients = [
            AioTimedCacheClient(
                i, self.server, self.now, delta=delta, recorder=self.recorder
            )
            for i in range(n_clients)
        ]
        self.server.bind_clock(self.now)

    def now(self) -> float:
        return self._clock.now()

    async def run(
        self,
        workload: Callable[["AioSession", AioTimedCacheClient], Awaitable[None]],
    ) -> History:
        """Run one workload coroutine per client, concurrently."""
        self.now()  # pin t0 before anyone starts
        await asyncio.gather(*(workload(self, client) for client in self.clients))
        return self.recorder.history()

    def aggregate_stats(self) -> ClientStats:
        total = ClientStats()
        for client in self.clients:
            total = total.merge(client.stats)
        return total


def run_aio_session(
    n_clients: int,
    workload: Callable[[AioSession, AioTimedCacheClient], Awaitable[None]],
    delta: float = math.inf,
    latency: float = 0.002,
) -> Tuple[History, AioSession]:
    """Convenience wrapper: build a session, drive it with asyncio.run,
    and return both the recorded history and the session (for stats)."""
    session = AioSession(n_clients, delta=delta, latency=latency)
    history = asyncio.run(session.run(workload))
    return history, session
