"""A deterministic discrete-event simulation kernel.

The paper's authors evaluate timed consistency on a real distributed
system; we substitute a simulator (see DESIGN.md) because the definitions
are stated over effective times and clock precision, both of which a
simulator controls exactly — and determinism makes every experiment
reproducible bit-for-bit.

The kernel is deliberately small: a binary-heap event queue with FIFO
tie-breaking, callback scheduling, and generator-based *processes* (a
process is a generator that yields :class:`Timeout` or :class:`Event`
instances; the kernel resumes it when the yield completes).  This is the
subset of SimPy's model that the protocols and workloads need, built from
scratch per the reproduction rules.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a dead process)."""


class Event:
    """A one-shot synchronization point.

    Processes yield an event to suspend until somebody calls
    :meth:`succeed`.  A value may be attached and becomes the result of the
    ``yield`` expression in the waiting process.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking every waiter at the current instant."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            self.sim.schedule(0.0, callback, self)
        self._callbacks.clear()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class AllOf(Event):
    """An event that succeeds when *all* component events have succeeded.

    Its value is the list of component values in the given order.
    """

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim)
        if not events:
            raise SimulationError("AllOf needs at least one event")
        self._values: List[Any] = [None] * len(events)
        self._remaining = len(events)
        for i, event in enumerate(events):
            event.add_callback(self._make_callback(i))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            self._values[index] = event.value
            self._remaining -= 1
            if self._remaining == 0 and not self.triggered:
                self.succeed(list(self._values))

        return on_done


class AnyOf(Event):
    """An event that succeeds when the *first* component event does.

    Its value is ``(index, value)`` of the winner; later completions are
    ignored.
    """

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim)
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        for i, event in enumerate(events):
            event.add_callback(self._make_callback(i))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_done(event: Event) -> None:
            if not self.triggered:
                self.succeed((index, event.value))

        return on_done


ProcessGenerator = Generator[Any, Any, None]


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * ``Timeout(dt)`` — resume after ``dt`` simulated seconds;
    * ``Event`` — resume when the event succeeds (receiving its value);
    * ``Process`` — resume when that process finishes.

    ``done`` flips when the generator returns; ``completion`` is an event
    other processes can wait on.
    """

    __slots__ = ("sim", "generator", "done", "completion", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        self.sim = sim
        self.generator = generator
        self.done = False
        self.completion = Event(sim)
        self.name = name or getattr(generator, "__name__", "process")
        sim.schedule(0.0, self._step, None)

    def _step(self, _event_or_none: Any) -> None:
        value = _event_or_none.value if isinstance(_event_or_none, Event) else None
        try:
            target = self.generator.send(value)
        except StopIteration:
            self.done = True
            self.completion.succeed()
            return
        if isinstance(target, Timeout):
            self.sim.schedule(target.delay, self._step, None)
        elif isinstance(target, Event):
            target.add_callback(self._step)
        elif isinstance(target, Process):
            target.completion.add_callback(self._step)
        else:
            raise SimulationError(
                f"process {self.name} yielded {target!r}; expected Timeout, "
                "Event or Process"
            )


class Simulator:
    """The event loop: a heap of (time, sequence, callback) entries.

    The monotonically increasing sequence number makes simultaneous events
    fire in scheduling order, which keeps runs deterministic for a fixed
    seed and schedule.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, args)
        )

    def schedule_at(self, when: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, next(self._sequence), callback, args))

    def timeout(self, delay: float) -> Timeout:
        """Sugar for processes: ``yield sim.timeout(0.5)``."""
        return Timeout(delay)

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def all_of(self, events: List[Event]) -> "AllOf":
        """Succeeds when every given event has (values in order)."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> "AnyOf":
        """Succeeds with (index, value) of the first event to fire."""
        return AnyOf(self, events)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process starting now."""
        return Process(self, generator, name)

    # -- running ----------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, callback, args = heapq.heappop(self._queue)
        self.now = when
        callback(*args)
        self.events_processed += 1
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or simulated time ``until``.

        Returns the final simulated time.  With ``until`` given, the clock
        is advanced to exactly ``until`` even if the last event fired
        earlier (so measurement windows are exact).
        """
        if until is None:
            while self.step():
                pass
            return self.now
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self.now = max(self.now, until)
        return self.now

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    def time_source(self) -> Callable[[], float]:
        """A closure reading this simulator's clock — what
        :class:`repro.clocks.physical.PhysicalClock` consumes."""
        return lambda: self.now
