"""Deterministic discrete-event simulation substrate."""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.network import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    Message,
    Network,
    NetworkStats,
    UniformLatency,
)
from repro.sim.node import Node
from repro.sim.rng import (
    RngRegistry,
    ZipfSampler,
    bounded,
    exponential,
    lognormal,
    weighted_choice,
)
from repro.sim.trace import TraceRecorder, UniqueValueFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "ConstantLatency",
    "Event",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecorder",
    "UniformLatency",
    "UniqueValueFactory",
    "ZipfSampler",
    "bounded",
    "exponential",
    "lognormal",
    "weighted_choice",
]
