"""The sans-I/O timed-consistency engine (the paper's protocol, once).

The lifetime protocol of Sections 5.1-5.3 used to be implemented twice —
once on the deterministic simulator (:mod:`repro.protocol`) and once
over real sockets (:mod:`repro.net`) — and the copies drifted: batching,
exactly-once dedup, ring epochs and recovery hooks existed only on the
TCP side.  This package is the single canonical implementation both
stacks now drive:

* :class:`ServerEngine` / :class:`CausalServerEngine` — the server half:
  fetch/validate/write/write-batch install logic, the timescale +
  ``Context`` rule, the exactly-once :class:`ReplyCache`, ring-epoch
  adoption and the promotion (failover) rule.  ``execute(client_id,
  frame)`` consumes one request frame (a plain dict) and returns an
  :class:`EngineResult` describing every effect — the reply frame, the
  versions to WAL-log *before* the ack, the versions to propagate — for
  the transport driver to carry out.
* :class:`CacheEngine` / :class:`CausalCacheEngine` — the client half:
  the cache structure (versions with lifetimes, ``Context_i``, *old*
  entries), rules 1-3, and the read/validate/fetch decision.

Engines are pure state machines: no sockets, no event loop, no
simulator.  Time enters only through the injected ``clock`` (the node's
protocol timescale) and optional ``wall`` (ground truth, used by the
simulator to stamp trace times) callables — which is what makes the
conformance suite (drive both drivers, compare engine effects
byte-for-byte) and the frame fuzzer possible.
"""

from repro.engine.cache import (
    CacheEngine,
    CausalCacheEngine,
    ReadDecision,
    StalenessAction,
)
from repro.engine.effects import EngineResult
from repro.engine.reply_cache import ReplyCache
from repro.engine.server import (
    ERROR,
    CausalServerEngine,
    ServerEngine,
    version_payload,
)

__all__ = [
    "ERROR",
    "CacheEngine",
    "CausalCacheEngine",
    "CausalServerEngine",
    "EngineResult",
    "ReadDecision",
    "ReplyCache",
    "ServerEngine",
    "StalenessAction",
    "version_payload",
]
