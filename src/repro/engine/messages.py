"""Message kinds and payload schemas of the lifetime protocols.

Sizes are in abstract "units": control messages cost 1 unit, full object
transfers cost ``OBJECT_SIZE`` units, matching the paper's point that
validating by timestamp comparison "avoids the unnecessary sending of
large objects" (Section 5.2).
"""

from __future__ import annotations

#: Client -> server: cache miss, send me your current version.
FETCH = "fetch"
#: Server -> client: a full version in response to FETCH (or a push).
VERSION = "version"
#: Client -> server: if-modified-since — is my version (alpha) still valid?
VALIDATE = "validate"
#: Server -> client: your version is still current; omega/beta advanced.
STILL_VALID = "still-valid"
#: Client -> server: write-through of a locally applied update.
WRITE = "write"
#: Server -> client: the write has been installed (writes are synchronous).
WRITE_ACK = "write-ack"
#: Server -> client: push of a fresh version (push propagation policy).
PUSH = "push"
#: Server -> client: invalidation of an object (invalidation policy).
INVALIDATE = "invalidate"
#: Client -> server: several writes in one frame (``writes: [{obj, value}]``).
WRITE_BATCH = "write-batch"
#: Server -> client: per-item acks for a WRITE_BATCH (``acks: [{obj, alpha}]``).
WRITE_BATCH_ACK = "write-batch-ack"
#: Client -> server: several validations in one frame
#: (``items: [{obj, alpha}]``; a null ``alpha`` asks for the full version).
VALIDATE_BATCH = "validate-batch"
#: Server -> client: per-item results for a VALIDATE_BATCH (``results``:
#: a list of STILL_VALID / VERSION payloads, in item order).
VALIDATE_BATCH_ACK = "validate-batch-ack"

#: Cost (in size units) of shipping a full object version.
OBJECT_SIZE = 20
#: Cost of a control message (validate, still-valid, invalidate).
CONTROL_SIZE = 1

#: Message kinds that carry a full object copy.
BULK_KINDS = frozenset({VERSION, PUSH, WRITE})

#: Request kinds a server must answer exactly once: a retransmission of
#: one of these replays the cached reply instead of re-executing (the
#: reply cache in :mod:`repro.net.server`).  ``sync`` is deliberately
#: absent — a clock-sync exchange is time-sensitive and must re-execute.
DEDUP_KINDS = frozenset({FETCH, VALIDATE, WRITE, WRITE_BATCH, VALIDATE_BATCH})


def size_of(kind: str) -> int:
    """Size units for a message of the given kind."""
    return OBJECT_SIZE if kind in BULK_KINDS else CONTROL_SIZE
