"""Object versions with lifetimes (Section 5.1 of the paper).

Every cached or stored object value carries its *lifetime*: the interval
``[alpha, omega]`` between the instant the value was written (start time)
and the latest instant it is known to have still been current (ending
time).  Two values are *mutually consistent* iff their lifetimes overlap —
they coexisted at some instant.  For the physical protocols alpha/omega are
real numbers; for the causal protocols they are vector (or plausible)
timestamps.  The TCC protocol adds ``beta``, the *checking time*: the
latest real-time instant the value was known valid, used to enforce the
delta bound even when lifetimes are logical (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.clocks.base import LogicalTimestamp, Ordering


@dataclass
class PhysicalVersion:
    """A value with a physical-time lifetime.

    ``alpha``: effective time of the write that produced the value.
    ``omega``: latest time the value is known to have been current.
    ``writer``: site id of the writer (for diagnostics).
    """

    obj: str
    value: Any
    alpha: float
    omega: float
    writer: int = -1

    def __post_init__(self) -> None:
        if self.omega < self.alpha:
            raise ValueError(
                f"lifetime ends before it starts: [{self.alpha}, {self.omega}]"
            )

    def advance_omega(self, until: float) -> None:
        """Extend the known lifetime (a validation succeeded at ``until``)."""
        if until > self.omega:
            self.omega = until

    def mutually_consistent(self, other: "PhysicalVersion") -> bool:
        """Lifetimes overlap: the two values coexisted (Section 5.1)."""
        return max(self.alpha, other.alpha) <= min(self.omega, other.omega)

    def copy(self) -> "PhysicalVersion":
        return replace(self)

    def __repr__(self) -> str:
        return (
            f"PhysicalVersion({self.obj}={self.value!r} "
            f"[{self.alpha:g}, {self.omega:g}] by {self.writer})"
        )


@dataclass
class LogicalVersion:
    """A value with a vector/plausible-clock lifetime, plus the TCC
    checking time ``beta`` (real time; ``None`` for the plain CC protocol).

    ``birth`` is the physical instant the write was issued — immutable,
    unlike ``beta`` which advances on every validation.  Servers break
    ties between *concurrent* writes by ``birth`` so the physically later
    write wins, which is what keeps the TCC delta bound meaningful.
    """

    obj: str
    value: Any
    alpha: LogicalTimestamp
    omega: LogicalTimestamp
    writer: int = -1
    beta: Optional[float] = None
    birth: float = 0.0

    def advance_omega(self, until: LogicalTimestamp) -> None:
        """Join the known ending time with ``until``."""
        self.omega = self.omega.join(until)

    def advance_beta(self, until: float) -> None:
        if self.beta is None or until > self.beta:
            self.beta = until

    def omega_causally_before(self, context: LogicalTimestamp) -> bool:
        """The invalidation test of Section 5.3: ``omega -> Context_i``
        (strictly causally before; concurrent is acceptable)."""
        return self.omega.compare(context) is Ordering.BEFORE

    def copy(self) -> "LogicalVersion":
        return replace(self)

    def __repr__(self) -> str:
        return (
            f"LogicalVersion({self.obj}={self.value!r} "
            f"[{self.alpha!r}, {self.omega!r}] beta={self.beta} by {self.writer})"
        )


@dataclass
class CacheEntry:
    """A cached version plus cache-local bookkeeping.

    ``old`` implements the Section 5.2 optimization: instead of
    invalidating a version whose ending time fell behind ``Context_i`` (or
    behind ``t_i - delta``), mark it *old*; the next access validates it
    against a server with an if-modified-since exchange, which either
    advances the ending time or replaces the version — avoiding the
    unnecessary transfer of large objects.
    """

    version: Any  # PhysicalVersion | LogicalVersion
    old: bool = False
    fetched_at: float = 0.0
    hits: int = 0

    def mark_old(self) -> None:
        self.old = True

    def refresh(self, version: Any, now: float) -> None:
        self.version = version
        self.old = False
        self.fetched_at = now
