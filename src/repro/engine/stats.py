"""Per-client protocol statistics, exported through ``repro.obs``.

:class:`ClientStats` is the canonical counter struct of every cache
client (sim, asyncio twin, TCP, ring router).  It is *ported onto* the
:mod:`repro.obs` registry in the pull model: the fields stay native
``int``s (the sim hot path keeps plain ``+= 1`` arithmetic), and
:meth:`ClientStats.bind` registers the struct as a registry collector
that materializes the Prometheus families at scrape time.
:meth:`as_row` and :meth:`merge` remain as the thin bridge the benches
and tests were built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ClientStats:
    """Counters a cache client maintains while running a workload.

    * ``fresh_hits`` — reads served from cache with no messages;
    * ``validations`` — if-modified-since round trips (split into
      ``revalidated`` = answered STILL_VALID and ``refreshed`` = answered
      with a new version);
    * ``fetches`` — cold misses (no cached entry at all);
    * ``invalidations`` — cache entries dropped by the Context rules;
    * ``marked_old`` — entries demoted to *old* instead of dropped
      (Section 5.2 optimization);
    * ``pushes``/``push_invalidations`` — server-initiated traffic
      received;
    * ``retries`` — request retransmissions on lossy networks;
    * ``read_latencies`` — per-read completion latencies.

    Staleness is deliberately *not* counted here: it is a ground-truth
    property of the recorded execution, computed by
    :func:`repro.analysis.staleness_report` so the protocol cannot
    misreport itself.
    """

    reads: int = 0
    writes: int = 0
    fresh_hits: int = 0
    validations: int = 0
    revalidated: int = 0
    refreshed: int = 0
    fetches: int = 0
    invalidations: int = 0
    marked_old: int = 0
    pushes: int = 0
    push_invalidations: int = 0
    fetch_check_failures: int = 0
    retries: int = 0
    busy: int = 0  #: server busy frames honored (request reissued, same id)
    batched_writes: int = 0  #: writes that travelled in write-batch frames
    read_latencies: List[float] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served without any message."""
        return self.fresh_hits / self.reads if self.reads else 0.0

    @property
    def messages_per_read(self) -> float:
        """Round trips per read (validations + fetches, each 2 messages)."""
        if not self.reads:
            return 0.0
        return 2.0 * (self.validations + self.fetches) / self.reads

    @property
    def mean_read_latency(self) -> float:
        if not self.read_latencies:
            return 0.0
        return sum(self.read_latencies) / len(self.read_latencies)

    def merge(self, other: "ClientStats") -> "ClientStats":
        """Aggregate counters across clients (for fleet-level reporting)."""
        merged = ClientStats()
        for name in (
            "reads", "writes", "fresh_hits", "validations", "revalidated",
            "refreshed", "fetches", "invalidations", "marked_old", "pushes",
            "push_invalidations", "fetch_check_failures", "retries",
            "busy", "batched_writes",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.read_latencies = self.read_latencies + other.read_latencies
        return merged

    def as_row(self) -> Dict[str, float]:
        """A flat dict for table rendering in benches."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "hit_ratio": round(self.hit_ratio, 4),
            "msgs_per_read": round(self.messages_per_read, 4),
            "validations": self.validations,
            "fetches": self.fetches,
            "invalidations": self.invalidations,
            "retries": self.retries,
            "mean_read_latency": round(self.mean_read_latency, 4),
        }

    # -- the repro.obs port ---------------------------------------------------

    def collect_families(
        self, labels: Optional[Dict[str, str]] = None
    ) -> List[Dict[str, Any]]:
        """The struct as registry metric families (the collector body).

        Cache events (hits, validations split by outcome, fetches,
        invalidations, mark-old demotions = lifetime expirations,
        revalidations = lifetime renewals) land in one labeled family so
        dashboards can stack them; read latencies export as a
        sum/count pair (mean recoverable at query time).
        """
        from repro.obs.metrics import family

        base = {k: str(v) for k, v in (labels or {}).items()}

        def with_label(**extra: str) -> Dict[str, str]:
            out = dict(base)
            out.update(extra)
            return out

        return [
            family("repro_client_ops_total", "counter",
                   "Client operations by kind",
                   [(with_label(kind="read"), self.reads),
                    (with_label(kind="write"), self.writes)]),
            family("repro_client_cache_events_total", "counter",
                   "Lifetime-protocol cache events by kind",
                   [(with_label(event="fresh_hit"), self.fresh_hits),
                    (with_label(event="validation"), self.validations),
                    (with_label(event="revalidated"), self.revalidated),
                    (with_label(event="refreshed"), self.refreshed),
                    (with_label(event="fetch"), self.fetches),
                    (with_label(event="invalidation"), self.invalidations),
                    (with_label(event="marked_old"), self.marked_old),
                    (with_label(event="fetch_check_failure"),
                     self.fetch_check_failures)]),
            family("repro_client_pushes_total", "counter",
                   "Server-initiated frames received by kind",
                   [(with_label(kind="push"), self.pushes),
                    (with_label(kind="invalidate"), self.push_invalidations)]),
            family("repro_client_retries_total", "counter",
                   "Request retransmissions on lossy links",
                   [(base, self.retries)]),
            family("repro_client_busy_total", "counter",
                   "Server busy frames honored (backoff + same-id reissue)",
                   [(base, self.busy)]),
            family("repro_client_batched_writes_total", "counter",
                   "Writes carried by write-batch frames",
                   [(base, self.batched_writes)]),
            family("repro_client_read_latency_seconds_sum", "counter",
                   "Summed read completion latency",
                   [(base, sum(self.read_latencies))]),
            family("repro_client_read_latency_reads", "counter",
                   "Reads contributing to the latency sum",
                   [(base, len(self.read_latencies))]),
            family("repro_client_hit_ratio", "gauge",
                   "Fraction of reads served without any message",
                   [(base, self.hit_ratio)]),
        ]

    def bind(self, registry, **labels: Any):
        """Register this struct as a collector on ``registry`` (labels
        typically ``site=<client id>`` plus a ``stack`` discriminator).
        Returns the collector for later unregistration."""

        def collector() -> List[Dict[str, Any]]:
            return self.collect_families(
                {k: str(v) for k, v in labels.items()}
            )

        return registry.register_collector(collector)
