"""Server-side engines: the authoritative store as a pure state machine.

:class:`ServerEngine` is the physical-clock (SC/TSC) server of Sections
5.1-5.2; :class:`CausalServerEngine` the logical-clock (CC/TCC) server of
Section 5.3.  Both consume request *frames* — plain dicts with a
``kind`` and the request's fields — via :meth:`execute` and return an
:class:`~repro.engine.effects.EngineResult`; the transport drivers
(:class:`repro.protocol.server.PhysicalServer` on the simulator,
:class:`repro.net.server.NetObjectServer` on TCP) own sockets, locks,
persistence and propagation fan-out, but no protocol logic.

Time is injected: ``clock`` is the server's protocol timescale (install
times ``alpha``, validation times ``omega``, checking times ``beta`` are
stamped with it); the optional ``wall`` callable is ground truth — when
set, write acks carry a ``true_time`` field stamped *at install*, and
the exactly-once replay returns the original ack unchanged, so a
retransmitted write keeps one effective time in the recorded trace.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.clocks.base import Ordering
from repro.clocks.vector import VectorTimestamp
from repro.engine.effects import EngineResult
from repro.engine.reply_cache import ReplyCache
from repro.engine import messages
from repro.engine.versions import LogicalVersion, PhysicalVersion

#: Reply kind for malformed/unknown frames (same wire token as
#: ``repro.net.framing.ERROR``; defined here so the engine stays free of
#: transport imports).
ERROR = "error"


def version_payload(version: PhysicalVersion) -> Dict[str, Any]:
    """The JSON-scalar fields of a version frame."""
    return {
        "obj": version.obj,
        "value": version.value,
        "alpha": version.alpha,
        "omega": version.omega,
        "writer": version.writer,
    }


class _EngineBase:
    """State and plumbing shared by both server engines: the exactly-once
    reply cache, the ring epoch, counters, and the journal tap."""

    def __init__(self, clock: Callable[[], float], *, reply_cache_size: int,
                 wall: Optional[Callable[[], float]]) -> None:
        self.clock = clock
        self.wall = wall
        self.replies = ReplyCache(reply_cache_size)
        # Cluster plumbing (repro.cluster; docs/CLUSTER.md).  ``epoch``
        # is the monotone ring-layout version this server acknowledges;
        # 0 means "no cluster" and keeps every reply epoch-free, so a
        # standalone server's wire traffic is byte-identical to before.
        self.epoch = 0
        self.ring: Optional[Dict[str, Any]] = None  #: serialized Ring of ``epoch``
        self.requests = 0
        self.writes_installed = 0
        self.writes_discarded = 0
        self.dedup_replays = 0
        self.batch_frames = 0
        self.batched_writes = 0
        #: When set (a list), every executed (frame, result) pair is
        #: appended — the conformance suite's effect journal.
        self.journal: Optional[List[Dict[str, Any]]] = None

    # -- exactly-once dedup ---------------------------------------------------

    def dedup_key(self, client_id: int, frame: Dict[str, Any]) -> Optional[Tuple[int, int]]:
        """The reply-cache key for a frame, or ``None`` if the frame is
        not a dedupable request (no id, or a kind that must re-execute)."""
        req = frame.get("req")
        if req is None or frame.get("kind") not in messages.DEDUP_KINDS:
            return None
        return (client_id, int(req))

    def replay(self, key: Optional[Tuple[int, int]]) -> Optional[Dict[str, Any]]:
        """The cached reply for ``key`` if this request was already
        answered — counting the replay — else ``None``."""
        if key is None:
            return None
        reply = self.replies.get(key)
        if reply is not None:
            self.dedup_replays += 1
        return reply

    def execute(self, client_id: int, frame: Dict[str, Any]) -> EngineResult:
        """Run one request exactly once; replays never reach here (the
        driver consults :meth:`replay` first)."""
        kind = str(frame.get("kind"))
        result = self._execute(client_id, frame, kind)
        key = self.dedup_key(client_id, frame)
        if key is not None and result.reply.get("kind") != ERROR:
            # Cache before the driver sends: if the ack is lost, the
            # retransmit (possibly after a reconnect) must replay rather
            # than re-execute.
            self.replies.put(key, result.reply)
        if self.journal is not None:
            self.journal.append({
                "frame": dict(frame),
                "reply": result.reply,
                "wal": list(result.wal),
                "installed": list(result.installed),
            })
        return result

    def _execute(self, client_id: int, frame: Dict[str, Any], kind: str) -> EngineResult:
        raise NotImplementedError

    def _error(self, frame: Dict[str, Any], message: str) -> EngineResult:
        return EngineResult({
            "kind": ERROR, "error": message, "req": frame.get("req"),
        })

    # -- ring epochs (repro.cluster; docs/CLUSTER.md) -------------------------

    def stamp(self, reply: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp a reply with this server's ring epoch — the staleness
        signal routers act on.  Epoch 0 (standalone server) stamps
        nothing, keeping the legacy wire format byte-identical.  Called
        by the driver at *send* time, not at execution: the epoch may
        advance between execution and a much later replay, and the
        retransmitting router deserves the current one."""
        if self.epoch <= 0 or "epoch" in reply:
            return reply
        return {**reply, "epoch": self.epoch}

    def adopt_ring(self, ring_dict: Dict[str, Any]) -> bool:
        """Adopt a serialized ring iff its epoch is not behind ours.
        Persistence of the acknowledged epoch is the driver's effect."""
        epoch = int(ring_dict.get("epoch", 0))
        if epoch < self.epoch or (epoch == self.epoch and self.ring is not None):
            return False
        self.ring = dict(ring_dict)
        self.epoch = epoch
        return True


class ServerEngine(_EngineBase):
    """The physical-clock authoritative store (one per server site).

    State: the version dict, the server ``Context`` (largest install
    time acknowledged), the recovered-*old* marks of
    :mod:`repro.store.recovery`, and the exactly-once reply cache.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        initial_value: Any = 0,
        reply_cache_size: int = 1024,
        wall: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(clock, reply_cache_size=reply_cache_size, wall=wall)
        self.initial_value = initial_value
        self.store: Dict[str, PhysicalVersion] = {}
        self.context = 0.0
        self.recovered_old: Set[str] = set()
        self.revalidations = 0
        self.promotions = 0
        #: Driver hook: called once per recovered-old re-proof (the net
        #: driver wires it to the durable store's instruments).
        self.on_revalidation: Optional[Callable[[], None]] = None

    # -- the lifetime protocol, server side -----------------------------------

    def current(self, obj: str) -> PhysicalVersion:
        """The stored version, its ending time advanced to "now" (the
        server has just observed it to still be current)."""
        if obj not in self.store:
            self.store[obj] = PhysicalVersion(
                obj, self.initial_value, alpha=0.0, omega=0.0, writer=-1
            )
        version = self.store[obj]
        if obj in self.recovered_old:
            # Recovered-old version, first touch since the restart: the
            # server is the object's single write authority and every
            # acknowledged write was WAL-logged before its ack, so the
            # replay was complete and nothing changed during the blind
            # window — this touch re-proves the version current and the
            # advance below becomes its new checking time.
            self.recovered_old.discard(obj)
            self.revalidations += 1
            if self.on_revalidation is not None:
                self.on_revalidation()
        version.advance_omega(self.clock())
        return version

    def install(self, obj: str, value: Any, writer: int) -> Tuple[PhysicalVersion, bool]:
        """Stamp and install one write; returns ``(version, installed)``.

        The install instant is the write's effective time: the server
        stamps the version with its own clock, which makes the start
        times of an object's installed versions monotone.  An
        equally-stamped concurrent write loses (latest-write-wins by
        strict comparison); the loser's writer keeps its value cached
        locally, which is SC-safe — that client's reads serialize
        earlier.
        """
        install_time = self.clock()
        version = PhysicalVersion(obj, value, install_time, install_time, writer)
        current = self.store.get(obj)
        installed = current is None or install_time > current.alpha
        if installed:
            self.store[obj] = version.copy()
            self.context = max(self.context, install_time)
            self.recovered_old.discard(obj)  # overwritten, not stale
            self.writes_installed += 1
        else:
            self.writes_discarded += 1
        return version, installed

    def validate_one(self, obj: str, alpha: Any) -> Dict[str, Any]:
        """One if-modified-since judgement (Section 5.2)."""
        version = self.current(obj)
        if version.alpha == alpha:
            return {
                "kind": messages.STILL_VALID, "obj": obj, "omega": version.omega,
            }
        return {"kind": messages.VERSION, **version_payload(version.copy())}

    # -- failover (repro.cluster; docs/CLUSTER.md) ----------------------------

    def promote(self, bound: float) -> Dict[str, Any]:
        """Become write authority for partitions a dead primary held.

        The paper's single-authority argument, in the exact shape of
        store recovery (:mod:`repro.store.recovery`) with the *detection
        bound* playing Δ: the new primary cannot know what the dead one
        acknowledged during the last ``bound`` seconds, so

        1. ``Context := max(known, t_promote − bound)`` — it never
           claims a context older than its blind window allows;
        2. every version whose checking time predates ``t_promote −
           bound`` is marked **old** and re-proved on first touch by
           :meth:`current` (each re-proof counts a revalidation).
        """
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        t_promote = self.clock()
        floor = t_promote - bound
        self.context = max(self.context, floor)
        marked = {
            obj for obj, version in self.store.items()
            if version.omega < floor
        }
        self.recovered_old |= marked
        self.promotions += 1
        return {"t": t_promote, "context": self.context, "old": len(marked)}

    # -- frame dispatch -------------------------------------------------------

    def _execute(self, client_id: int, frame: Dict[str, Any], kind: str) -> EngineResult:
        if kind == messages.FETCH:
            self.requests += 1
            version = self.current(str(frame["obj"])).copy()
            return EngineResult({
                "kind": messages.VERSION, "req": frame.get("req"),
                **version_payload(version),
            })
        if kind == messages.VALIDATE:
            self.requests += 1
            reply = self.validate_one(str(frame["obj"]), frame.get("alpha"))
            reply["req"] = frame.get("req")
            return EngineResult(reply)
        if kind == messages.WRITE:
            self.requests += 1
            version, installed = self.install(
                str(frame["obj"]), frame["value"], client_id
            )
            reply = {
                "kind": messages.WRITE_ACK, "req": frame.get("req"),
                "obj": version.obj, "alpha": version.alpha,
                "installed": installed,
            }
            if self.wall is not None:
                reply["true_time"] = self.wall()
            return EngineResult(reply, wal=[version],
                                installed=[version] if installed else [])
        if kind == messages.WRITE_BATCH:
            return self._execute_write_batch(client_id, frame)
        if kind == messages.VALIDATE_BATCH:
            return self._execute_validate_batch(frame)
        return self._error(frame, f"unknown message kind {kind!r}")

    def _execute_write_batch(self, client_id: int, frame: Dict[str, Any]) -> EngineResult:
        """Install a batch of writes as one frame: the driver amortizes
        its lock acquisition and WAL append (one fsync under
        ``fsync=always``) over ``result.wal``; per-item acks in item
        order.  Each item still gets its own install stamp — under a
        strictly monotone clock (the TCP stack's) strictly later per
        item, so batching amortizes cost without merging effective
        times.  Under a stalled clock (the simulator's, where time only
        moves between events) items stamp identically, and a same-object
        duplicate inside one frame loses the latest-write-wins race —
        batch distinct objects there."""
        writes = frame.get("writes")
        if not isinstance(writes, list) or not writes:
            return self._error(frame, "write-batch needs a non-empty 'writes' list")
        self.batch_frames += 1
        self.batched_writes += len(writes)
        self.requests += len(writes)
        wal: List[PhysicalVersion] = []
        installed: List[PhysicalVersion] = []
        acks: List[Dict[str, Any]] = []
        for item in writes:
            version, ok = self.install(str(item["obj"]), item["value"], client_id)
            wal.append(version)
            if ok:
                installed.append(version)
            acks.append({"obj": version.obj, "alpha": version.alpha, "installed": ok})
        reply = {
            "kind": messages.WRITE_BATCH_ACK, "req": frame.get("req"),
            "acks": acks,
        }
        if self.wall is not None:
            reply["true_time"] = self.wall()
        return EngineResult(reply, wal=wal, installed=installed)

    def _execute_validate_batch(self, frame: Dict[str, Any]) -> EngineResult:
        """Judge a batch of validations in one frame; a null ``alpha``
        always ships the full version (bulk refresh)."""
        items = frame.get("items")
        if not isinstance(items, list) or not items:
            return self._error(frame, "validate-batch needs a non-empty 'items' list")
        self.batch_frames += 1
        self.requests += len(items)
        results = [
            self.validate_one(str(item["obj"]), item.get("alpha"))
            for item in items
        ]
        return EngineResult({
            "kind": messages.VALIDATE_BATCH_ACK, "req": frame.get("req"),
            "results": results,
        })


class CausalServerEngine(_EngineBase):
    """The logical-clock authoritative store (CC/TCC, Section 5.3).

    The server keeps a running *knowledge* vector — the join of every
    timestamp it has seen.  A fetched version's ending time is
    ``alpha join requester_context``: because writes are synchronous and
    each object has a single home server, every write to the object that
    lies in the requester's causal past is already installed here, so the
    current version is valid with respect to the requester's entire
    context.  (Using the server's global knowledge instead would be
    unsound: it contains entries for unrelated clients' activity, which
    makes the ending time spuriously concurrent with later contexts and
    lets a cache serve a value that a causally newer same-object write
    should have superseded.)  The checking time ``beta`` is the server's
    physical now.

    Causal frames carry timestamp/version *objects*, not JSON scalars:
    there is no wire transport for this variant yet, only the simulator
    driver (:class:`repro.protocol.server.CausalServer`).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        vector_width: int,
        initial_value: Any = 0,
        zero_timestamp: Optional[Any] = None,
        reply_cache_size: int = 1024,
        wall: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(clock, reply_cache_size=reply_cache_size, wall=wall)
        self.initial_value = initial_value
        self.vector_width = vector_width
        self.zero_timestamp = (
            zero_timestamp
            if zero_timestamp is not None
            else VectorTimestamp.zero(vector_width)
        )
        self.knowledge = self.zero_timestamp
        self.store: Dict[str, LogicalVersion] = {}

    def current(
        self, obj: str, requester_context: Optional[Any] = None
    ) -> LogicalVersion:
        """A *copy* of the stored version, tailored to the requester.

        The stored version's own ending time stays at its start time; the
        reply copy's ending time is ``alpha join requester_context``.
        Accumulating contexts into the stored version would leak one
        client's causal past into another's ending time and break the
        soundness argument above.
        """
        if obj not in self.store:
            zero = self.zero_timestamp
            self.store[obj] = LogicalVersion(
                obj, self.initial_value, alpha=zero, omega=zero, writer=-1,
                beta=0.0,
            )
        stored = self.store[obj]
        stored.advance_beta(self.clock())
        reply = stored.copy()
        if requester_context is not None:
            reply.advance_omega(requester_context)
        return reply

    @staticmethod
    def _wins(incoming: LogicalVersion, current: LogicalVersion) -> bool:
        """Does the incoming write supersede the stored one?

        Causally later always wins; causally older (a stale retransmit,
        impossible with synchronous writes) loses.  A *concurrent* incoming
        write wins: each object has a single home server, so arrival order
        is a total install order, and the install instant is the write's
        effective time.  Install-order last-writer-wins keeps the stored
        version the effectively-latest write, which is what makes the TCC
        delta bound hold — if the effectively-older concurrent write could
        stay installed, every future read of it would miss the newer one
        forever, violating Definition 2 by more than the clock precision.
        """
        order = incoming.alpha.compare(current.alpha)
        return order is Ordering.AFTER or order is Ordering.CONCURRENT

    def install(self, incoming: LogicalVersion) -> Tuple[LogicalVersion, bool]:
        """Install a client-stamped write if it wins; returns the stored
        (or rejected incoming) version and whether it was installed."""
        self.knowledge = self.knowledge.join(incoming.alpha)
        current = self.store.get(incoming.obj)
        installed = current is None or self._wins(incoming, current)
        if installed:
            stored = incoming.copy()
            stored.advance_beta(self.clock())
            self.store[incoming.obj] = stored
            self.writes_installed += 1
            return stored, True
        self.writes_discarded += 1
        return incoming, False

    def _execute(self, client_id: int, frame: Dict[str, Any], kind: str) -> EngineResult:
        if kind == messages.FETCH:
            self.requests += 1
            version = self.current(str(frame["obj"]), frame.get("context"))
            return EngineResult({
                "kind": messages.VERSION, "req": frame.get("req"),
                "version": version.copy(),
            })
        if kind == messages.VALIDATE:
            self.requests += 1
            version = self.current(str(frame["obj"]), frame.get("context"))
            if version.alpha == frame.get("alpha"):
                reply = {
                    "kind": messages.STILL_VALID, "req": frame.get("req"),
                    "obj": version.obj, "omega": version.omega,
                    "beta": version.beta,
                }
            else:
                reply = {
                    "kind": messages.VERSION, "req": frame.get("req"),
                    "version": version.copy(),
                }
            return EngineResult(reply)
        if kind == messages.WRITE:
            self.requests += 1
            incoming: LogicalVersion = frame["version"]
            stored, installed = self.install(incoming)
            reply = {
                "kind": messages.WRITE_ACK, "req": frame.get("req"),
                "obj": incoming.obj, "installed": installed,
                "beta": self.clock(),
            }
            if self.wall is not None:
                reply["true_time"] = self.wall()
            return EngineResult(reply, wal=[stored] if installed else [],
                                installed=[stored] if installed else [])
        return self._error(frame, f"unknown message kind {kind!r}")
