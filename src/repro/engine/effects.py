"""Effect descriptions returned by the server engines.

An engine call never performs I/O; it returns an :class:`EngineResult`
whose fields the transport driver turns into real effects, in this
order:

1. ``wal`` — versions to append to the durable log *before* the reply is
   sent (log-before-ack: an acknowledged write is always recoverable);
2. ``reply`` — the reply frame to send to the requesting client;
3. ``installed`` — versions that actually took the install slot, to be
   recorded in the server-side trace and propagated to subscribers per
   the driver's push/invalidate policy.

``wal`` and ``installed`` differ exactly when the latest-write-wins rule
discards a write (a non-strictly-monotone clock stamped two writes
identically): the discarded stamp is still logged — the WAL is the
record of what was acknowledged — but never propagated or recorded as
the object's current version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class EngineResult:
    """Everything one ``execute()`` call asks the driver to do."""

    #: The reply frame (plain dict, ``kind`` + scalar/timestamp fields).
    reply: Dict[str, Any]
    #: Stamped versions to log before the reply leaves (may include
    #: LWW-discarded stamps; the WAL records acknowledgements).
    wal: List[Any] = field(default_factory=list)
    #: Versions that took the install slot: record + propagate these.
    installed: List[Any] = field(default_factory=list)
