"""Client-side engines: the lifetime cache as a pure state machine.

:class:`CacheEngine` is the physical-clock cache of Sections 5.1-5.2
(rules 1-3); :class:`CausalCacheEngine` the vector-clock cache of
Section 5.3.  The transport drivers — the simulator's
:class:`repro.protocol.cache_client.TimedCacheClient`, the TCP
:class:`repro.net.client.NetCacheClient`, and the asyncio twin in
:mod:`repro.sim.aio` — own request ids, retransmission, futures/events
and trace recording; every cache mutation and freshness judgement lives
here, once.

Time is a parameter, not an import: the driver passes its own reading
(``now``) into :meth:`CacheEngine.rule3` / :meth:`CacheEngine.lookup`,
and the instant to record as ``fetched_at`` into the install methods, so
the same engine runs under simulated, synchronized, and wall clocks.

Division of stat-keeping: the engine counts what cache *state* decides —
``fresh_hits``/``validations``/``fetches`` (the read decision),
``marked_old``/``invalidations`` (demotions), ``fetch_check_failures``,
``pushes``/``push_invalidations``.  The driver counts what transport
decides: ``reads``/``writes``, ``revalidated``/``refreshed`` (which
reply came back), ``retries``/``busy``/``batched_writes``, latencies.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.clocks.base import Ordering
from repro.engine.stats import ClientStats
from repro.engine.versions import CacheEntry, LogicalVersion, PhysicalVersion


class StalenessAction(enum.Enum):
    """What the Context rules do to an entry that fell behind."""

    INVALIDATE = "invalidate"  # drop: next access is a full fetch
    MARK_OLD = "mark-old"  # keep: next access validates (Section 5.2)


@dataclass
class ReadDecision:
    """How a read of ``obj`` can complete given the cache state.

    ``action`` is ``"hit"`` (serve ``value`` with no messages),
    ``"validate"`` (if-modified-since with the cached ``alpha``), or
    ``"fetch"`` (cold miss: ask for the full version).
    """

    action: str
    value: Any = None
    alpha: Any = None

    @property
    def hit(self) -> bool:
        return self.action == "hit"


class _CacheBase:
    """Validation and demotion plumbing shared by both cache engines."""

    def __init__(
        self,
        *,
        site_id: int,
        delta: float,
        staleness_action: StalenessAction,
        delta_overrides: Optional[Dict[str, float]],
        stats: Optional[ClientStats],
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if delta_overrides and any(d < 0 for d in delta_overrides.values()):
            raise ValueError("delta overrides must be non-negative")
        self.site_id = site_id
        self.delta = delta
        self.delta_overrides = dict(delta_overrides or {})
        self.staleness_action = staleness_action
        self.stats = stats if stats is not None else ClientStats()
        self.cache: Dict[str, CacheEntry] = {}

    def delta_for(self, obj: str) -> float:
        """The freshness bound in force for ``obj``."""
        return self.delta_overrides.get(obj, self.delta)

    def _demote(self, obj: str, entry: CacheEntry) -> None:
        """Rule 1's invalidation clause, per the configured policy."""
        if self.staleness_action is StalenessAction.INVALIDATE:
            del self.cache[obj]
            self.stats.invalidations += 1
        elif not entry.old:
            entry.mark_old()
            self.stats.marked_old += 1

    def _store(self, version: Any, fetched_at: float) -> None:
        entry = self.cache.get(version.obj)
        if entry is None:
            self.cache[version.obj] = CacheEntry(version, fetched_at=fetched_at)
        else:
            entry.refresh(version, fetched_at)


class CacheEngine(_CacheBase):
    """Physical-clock lifetime cache: SC when ``delta`` is infinite,
    TSC(delta) otherwise."""

    def __init__(
        self,
        *,
        site_id: int = -1,
        delta: float = math.inf,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        delta_overrides: Optional[Dict[str, float]] = None,
        stats: Optional[ClientStats] = None,
    ) -> None:
        super().__init__(
            site_id=site_id, delta=delta, staleness_action=staleness_action,
            delta_overrides=delta_overrides, stats=stats,
        )
        self.context = 0.0

    # -- the rules ------------------------------------------------------------

    def rule3(self, now: float) -> None:
        """Rule 3 (Section 5.2): Context_i := max(t_i - delta, Context_i).

        With per-object overrides the global advance uses the *loosest*
        bound in force (tighter per-object bounds are enforced in
        :meth:`usable`), so a loose override is not defeated by the
        global context."""
        loosest = self.delta
        if self.delta_overrides:
            loosest = max(loosest, max(self.delta_overrides.values()))
        if math.isinf(loosest):
            return
        self.advance_context(now - loosest)

    def advance_context(self, candidate: float) -> None:
        """Raise Context_i and demote every entry whose ending time fell
        behind it (rule 1's invalidation clause)."""
        if candidate <= self.context:
            return
        self.context = candidate
        for obj, entry in list(self.cache.items()):
            if entry.version.omega < self.context and not entry.old:
                self._demote(obj, entry)

    def usable(self, entry: CacheEntry, now: Optional[float] = None) -> bool:
        """May this cached version be returned with no messages?

        ``now`` arms the per-object delta bound; passing ``None`` skips
        it — the TCP client's behaviour, where pull mode enforces delta
        through rule 3 alone and push mode trusts the server's pushes
        for freshness."""
        if entry.old or entry.version.omega < self.context:
            return False
        if now is not None:
            bound = self.delta_for(entry.version.obj)
            if not math.isinf(bound):
                if entry.version.omega < now - bound:
                    return False
        return True

    def lookup(self, obj: str, now: Optional[float] = None) -> ReadDecision:
        """Classify a read (counting the decision's stats): fresh hit,
        if-modified-since validation, or cold fetch."""
        entry = self.cache.get(obj)
        if entry is not None and self.usable(entry, now):
            entry.hits += 1
            self.stats.fresh_hits += 1
            return ReadDecision("hit", value=entry.version.value)
        if entry is not None:
            self.stats.validations += 1
            return ReadDecision("validate", alpha=entry.version.alpha)
        self.stats.fetches += 1
        return ReadDecision("fetch")

    # -- applying server replies ----------------------------------------------

    def install_fetched(self, version: PhysicalVersion, fetched_at: float) -> None:
        """Rule 1: Context_i := max(alpha, Context_i); sweep; store."""
        if version.omega < self.context:
            # Cross-server case: sound to accept because writes are
            # synchronous (see the design notes in
            # repro.protocol.cache_client).
            self.stats.fetch_check_failures += 1
            version.advance_omega(self.context)
        self.advance_context(version.alpha)
        self._store(version, fetched_at)

    def apply_still_valid(self, obj: str, omega: float) -> "tuple[bool, Any]":
        """A STILL_VALID reply: advance the ending time, clear *old*.
        Returns ``(entry found, cached value)``."""
        entry = self.cache.get(obj)
        if entry is None:
            return False, None
        entry.version.advance_omega(omega)
        entry.old = False
        return True, entry.version.value

    def apply_write_ack(
        self, obj: str, value: Any, alpha: float, fetched_at: float
    ) -> PhysicalVersion:
        """Rule 2: Context_i := the write's install time; cache own copy."""
        version = PhysicalVersion(obj, value, alpha, alpha, self.site_id)
        self.advance_context(alpha)
        self._store(version, fetched_at)
        return version

    def apply_push(self, version: PhysicalVersion, fetched_at: float) -> bool:
        """A server push: install iff strictly newer than what we hold."""
        self.stats.pushes += 1
        entry = self.cache.get(version.obj)
        if entry is None or version.alpha > entry.version.alpha:
            self.install_fetched(version, fetched_at)
            return True
        return False

    def apply_invalidate(self, obj: str, alpha: float) -> None:
        """A server invalidation: demote the entry if it is older."""
        self.stats.push_invalidations += 1
        entry = self.cache.get(obj)
        if entry is not None and entry.version.alpha < alpha:
            self._demote(obj, entry)

    # -- invariants -----------------------------------------------------------

    def usable_snapshot(self, now: Optional[float] = None) -> Dict[str, PhysicalVersion]:
        """The versions this cache would serve right now, per object."""
        return {
            obj: entry.version
            for obj, entry in self.cache.items()
            if self.usable(entry, now)
        }

    def snapshot_mutually_consistent(self, now: Optional[float] = None) -> bool:
        """Section 5.1's cache-consistency invariant: the usable entries'
        lifetimes pairwise overlap (max start time <= min ending time), so
        all served values coexisted at some instant.  Holds by
        construction — ``Context_i`` is the max start time ever seen and
        usable entries have ``omega >= Context_i`` — and is asserted by
        the tests as a protocol invariant."""
        versions = list(self.usable_snapshot(now).values())
        if not versions:
            return True
        max_alpha = max(v.alpha for v in versions)
        min_omega = min(v.omega for v in versions)
        return max_alpha <= min_omega


class CausalCacheEngine(_CacheBase):
    """Vector-clock lifetime cache: CC when ``delta`` is infinite,
    TCC(delta) otherwise (via the checking time ``beta``)."""

    def __init__(
        self,
        *,
        site_id: int,
        vclock: Any,
        zero_timestamp: Any,
        delta: float = math.inf,
        staleness_action: StalenessAction = StalenessAction.MARK_OLD,
        delta_overrides: Optional[Dict[str, float]] = None,
        stats: Optional[ClientStats] = None,
    ) -> None:
        super().__init__(
            site_id=site_id, delta=delta, staleness_action=staleness_action,
            delta_overrides=delta_overrides, stats=stats,
        )
        self.vclock = vclock
        self.context = zero_timestamp

    # -- the rules ------------------------------------------------------------

    def usable(self, entry: CacheEntry, now: Optional[float] = None) -> bool:
        """No messages needed iff the entry is not old, its ending time has
        not fallen causally behind Context_i, and (TCC only) its checking
        time is within the object's delta of the local clock."""
        if entry.old:
            return False
        if entry.version.omega_causally_before(self.context):
            return False
        if now is not None:
            bound = self.delta_for(entry.version.obj)
            if not math.isinf(bound):
                beta = entry.version.beta or 0.0
                if beta < now - bound:
                    return False
        return True

    def lookup(self, obj: str, now: Optional[float] = None) -> ReadDecision:
        """Classify a read (counting the decision's stats)."""
        entry = self.cache.get(obj)
        if entry is not None and self.usable(entry, now):
            entry.hits += 1
            self.stats.fresh_hits += 1
            return ReadDecision("hit", value=entry.version.value)
        if entry is not None:
            self.stats.validations += 1
            return ReadDecision("validate", alpha=entry.version.alpha)
        self.stats.fetches += 1
        return ReadDecision("fetch")

    def sweep(self) -> None:
        """Invalidate (or mark old) entries causally behind Context_i."""
        for obj, entry in list(self.cache.items()):
            if entry.old:
                continue
            if entry.version.omega_causally_before(self.context):
                self._demote(obj, entry)

    # -- local writes and server replies --------------------------------------

    def local_write(
        self, obj: str, value: Any, birth: float, fetched_at: float
    ) -> LogicalVersion:
        """A write as a local event: the vector clock ticks and the
        version's start time is the new local timestamp (rule 2 adapted
        to logical clocks: ``Context_i := alpha := local logical time``).
        Local copies advance with the local logical clock and are never
        invalidated by a local update (Section 5.3)."""
        alpha = self.vclock.tick()
        self.context = self.context.join(alpha)
        version = LogicalVersion(
            obj, value, alpha=alpha, omega=alpha, writer=self.site_id,
            beta=birth, birth=birth,
        )
        for entry in self.cache.values():
            entry.version.advance_omega(alpha)
        self._store(version.copy(), fetched_at)
        return version

    def install_fetched(self, version: LogicalVersion, fetched_at: float) -> None:
        """Rule 1 adapted: Context_i := join(alpha, Context_i); sweep.

        The server already stamped ``omega = alpha join our_context`` (the
        paper's "ending time not causally before Context_i" requirement),
        so the check below only fires for pushes or for contexts that grew
        while the request was in flight; such a version is accepted but
        left with its smaller omega, so the next access revalidates it.
        """
        if version.omega.compare(self.context) is Ordering.BEFORE:
            self.stats.fetch_check_failures += 1
        self.vclock.merge(version.alpha)
        self.context = self.context.join(version.alpha)
        self.sweep()
        self._store(version, fetched_at)

    def apply_still_valid(
        self, obj: str, omega: Any, beta: Optional[float]
    ) -> "tuple[bool, Any]":
        """A STILL_VALID reply: join the ending time, advance the
        checking time, clear *old*; returns ``(found, cached value)``."""
        entry = self.cache.get(obj)
        if entry is None:
            return False, None
        entry.version.advance_omega(omega)
        if beta is not None:
            entry.version.advance_beta(beta)
        entry.old = False
        return True, entry.version.value

    def apply_write_beta(self, obj: str, beta: Optional[float]) -> None:
        """The server's checking time for an acknowledged write."""
        entry = self.cache.get(obj)
        if entry is not None and beta is not None:
            entry.version.advance_beta(beta)

    def apply_push(self, version: LogicalVersion, fetched_at: float) -> bool:
        """A server push: install iff causally after what we hold."""
        self.stats.pushes += 1
        entry = self.cache.get(version.obj)
        if entry is None or version.alpha.compare(entry.version.alpha) is Ordering.AFTER:
            self.install_fetched(version, fetched_at)
            return True
        return False

    def apply_invalidate(self, obj: str, alpha: Any) -> None:
        """A server invalidation: demote if causally older."""
        self.stats.push_invalidations += 1
        entry = self.cache.get(obj)
        if entry is not None and entry.version.alpha.compare(alpha) is Ordering.BEFORE:
            self._demote(obj, entry)

    # -- invariants -----------------------------------------------------------

    def usable_snapshot(self, now: Optional[float] = None) -> Dict[str, LogicalVersion]:
        """The versions this cache would serve right now, per object."""
        return {
            obj: entry.version
            for obj, entry in self.cache.items()
            if self.usable(entry, now)
        }

    def snapshot_mutually_consistent(self, now: Optional[float] = None) -> bool:
        """Section 5.1's invariant under logical lifetimes: no usable
        entry's start time is causally after another's ending time (their
        lifetimes overlap in the causal order, possibly concurrently)."""
        versions = list(self.usable_snapshot(now).values())
        for a in versions:
            for b in versions:
                if a is b:
                    continue
                if b.omega.compare(a.alpha) is Ordering.BEFORE:
                    return False
        return True
