"""The exactly-once reply cache (server half of request dedup)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple


class ReplyCache:
    """An LRU of ``(client_id, req) -> reply frame`` — the server half of
    exactly-once request semantics.

    A client retransmits under the *same* request id; looking the id up
    here turns re-execution into replay, so a write whose ack was lost
    is installed once and every retransmission returns the original
    ``alpha`` (each write keeps one effective time ``T(w)``, Definition 1).
    Keyed by ``client_id`` rather than the connection so the replay
    survives a reconnect.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], Dict[str, Any]]" = OrderedDict()

    def get(self, key: Tuple[int, int]) -> Optional[Dict[str, Any]]:
        reply = self._entries.get(key)
        if reply is not None:
            self._entries.move_to_end(key)
        return reply

    def put(self, key: Tuple[int, int], reply: Dict[str, Any]) -> None:
        self._entries[key] = reply
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)
