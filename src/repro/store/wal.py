"""The append-only write-ahead log.

One file of length-prefixed JSON records — the same codec discipline as
the wire frames of :mod:`repro.net.framing`, hardened for disk with a
checksum: every record is

    +----------------+----------------+----------------------------------+
    | 4 bytes        | 4 bytes        | N bytes                          |
    | N (big-endian) | CRC32(payload) | UTF-8 JSON object                |
    +----------------+----------------+----------------------------------+

The length prefix makes record boundaries explicit (a record is either
whole or it is the torn tail of a crash); the CRC catches the torn tail
*and* bit rot inside an otherwise well-framed record.  JSON keeps the
log debuggable — ``repro store inspect`` is a pretty-printer, but so is
``xxd`` plus squinting.

Durability is a policy, not a constant (the classic group-commit
trade-off; cf. Redis AOF ``appendfsync``):

* ``"always"``   — fsync after every append; an acknowledged write
  survives an immediate power cut.
* ``"interval"`` — fsync at most once per ``fsync_interval`` seconds
  (appends in between are written to the OS but not forced); bounds the
  loss window to the interval while amortizing the fsync cost.
* ``"never"``    — never fsync explicitly; the OS flushes when it
  pleases.  Fastest, weakest, and exactly what the in-memory seed did.

Recovery (:func:`replay` / :meth:`WriteAheadLog.open_recovered`) reads
the longest well-formed prefix.  On the first malformed record —
truncated header, truncated payload, CRC mismatch, undecodable JSON —
the prefix is kept, the remaining bytes are moved to a ``*.quarantine``
sidecar (never silently destroyed: a human can audit what the crash
ate), and the log is truncated back to the good prefix so appends resume
at a clean boundary.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)

#: A record larger than this is corruption, not data (mirrors the frame
#: cap of :mod:`repro.net.framing`).
MAX_RECORD_BYTES = 1 << 20

FSYNC_POLICIES = ("always", "interval", "never")


class WalError(Exception):
    """A malformed WAL record or a misused log handle."""


def encode_record(record: Dict[str, Any]) -> bytes:
    """Serialize one record to ``length || crc || JSON`` bytes."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise WalError(f"record of {len(payload)} bytes exceeds {MAX_RECORD_BYTES}")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(payload: bytes, crc: int) -> Dict[str, Any]:
    """Parse one record payload, verifying its checksum."""
    if zlib.crc32(payload) != crc:
        raise WalError("record CRC mismatch")
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalError(f"undecodable record: {exc}") from None
    if not isinstance(record, dict):
        raise WalError(f"record is not a JSON object: {type(record).__name__}")
    return record


@dataclass
class ReplayResult:
    """What a replay recovered, and where (and why) it stopped."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    good_bytes: int = 0  #: length of the well-formed prefix
    tail_bytes: int = 0  #: bytes past the prefix (0 for a clean log)
    tail_error: Optional[str] = None  #: why the tail is unusable

    @property
    def clean(self) -> bool:
        return self.tail_bytes == 0


def replay(path: str) -> ReplayResult:
    """Read the longest well-formed prefix of a WAL file.

    Never raises on corruption and never mutates the file: the result
    reports the good records, the prefix length, and the size/cause of
    any unusable tail.  A missing file replays as empty.
    """
    result = ReplayResult()
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return result
    at = 0
    while at < len(data):
        if at + _HEADER.size > len(data):
            result.tail_error = "truncated record header"
            break
        length, crc = _HEADER.unpack_from(data, at)
        if length > MAX_RECORD_BYTES:
            result.tail_error = f"announced record of {length} bytes"
            break
        end = at + _HEADER.size + length
        if end > len(data):
            result.tail_error = "truncated record payload"
            break
        try:
            record = decode_record(data[at + _HEADER.size:end], crc)
        except WalError as exc:
            result.tail_error = str(exc)
            break
        result.records.append(record)
        at = end
    result.good_bytes = at
    result.tail_bytes = len(data) - at
    return result


def quarantine_tail(path: str, result: ReplayResult) -> Optional[str]:
    """Move a corrupt tail to a ``*.quarantine-<n>`` sidecar and truncate
    the log to its good prefix.  Returns the sidecar path (None when the
    log was already clean)."""
    if result.clean:
        return None
    with open(path, "rb") as fh:
        fh.seek(result.good_bytes)
        tail = fh.read()
    n = 0
    while True:
        sidecar = f"{path}.quarantine-{n}"
        if not os.path.exists(sidecar):
            break
        n += 1
    with open(sidecar, "wb") as fh:
        fh.write(tail)
        fh.flush()
        os.fsync(fh.fileno())
    with open(path, "r+b") as fh:
        fh.truncate(result.good_bytes)
        fh.flush()
        os.fsync(fh.fileno())
    return sidecar


class WriteAheadLog:
    """An open, appendable WAL file with a configurable fsync policy.

    ``on_fsync`` (when given) is called with each fsync's duration in
    seconds — the hook :class:`repro.obs.instruments.StoreInstruments`
    feeds its latency histogram from.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        on_fsync: Optional[Callable[[float], None]] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval <= 0:
            raise ValueError(
                f"fsync_interval must be positive, got {fsync_interval}"
            )
        self.path = path
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.on_fsync = on_fsync
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self._fh = open(path, "ab")
        self._last_sync = time.monotonic()
        self._dirty = False

    @classmethod
    def open_recovered(
        cls, path: str, **kwargs: Any
    ) -> Tuple["WriteAheadLog", ReplayResult, Optional[str]]:
        """Replay ``path``, quarantine any corrupt tail, and open the
        clean prefix for appending: ``(log, replay_result, sidecar)``."""
        result = replay(path)
        sidecar = quarantine_tail(path, result)
        return cls(path, **kwargs), result, sidecar

    @property
    def size(self) -> int:
        """Current log length in bytes."""
        return os.path.getsize(self.path)

    def append(self, record: Dict[str, Any]) -> int:
        """Append one record; returns the bytes written.  Whether the
        record is *durable* on return depends on the fsync policy."""
        if self._fh.closed:
            raise WalError(f"log {self.path} is closed")
        data = encode_record(record)
        self._fh.write(data)
        self._fh.flush()  # out of the process: a plain crash loses nothing
        self._dirty = True
        self.records_appended += 1
        self.bytes_appended += len(data)
        if self.fsync == "always":
            self._sync()
        elif self.fsync == "interval":
            if time.monotonic() - self._last_sync >= self.fsync_interval:
                self._sync()
        return len(data)

    def append_many(self, records: Sequence[Dict[str, Any]]) -> int:
        """Append several records with one flush and (at most) one fsync;
        returns the bytes written.  This is the batching seam the write
        path amortizes fsyncs through: under ``fsync="always"`` a batch
        of N writes pays one fsync instead of N."""
        if self._fh.closed:
            raise WalError(f"log {self.path} is closed")
        total = 0
        for record in records:
            data = encode_record(record)
            self._fh.write(data)
            self.records_appended += 1
            self.bytes_appended += len(data)
            total += len(data)
        if not records:
            return 0
        self._fh.flush()
        self._dirty = True
        if self.fsync == "always":
            self._sync()
        elif self.fsync == "interval":
            if time.monotonic() - self._last_sync >= self.fsync_interval:
                self._sync()
        return total

    def flush(self, sync: bool = True) -> None:
        """Flush buffered records; ``sync`` forces them to stable storage
        regardless of policy (the shutdown path uses this)."""
        if self._fh.closed:
            return
        self._fh.flush()
        if sync and self._dirty:
            self._sync()

    def _sync(self) -> None:
        started = time.perf_counter()
        os.fsync(self._fh.fileno())
        elapsed = time.perf_counter() - started
        self._last_sync = time.monotonic()
        self._dirty = False
        self.fsyncs += 1
        if self.on_fsync is not None:
            self.on_fsync(elapsed)

    def truncate(self) -> None:
        """Drop every record (a snapshot has superseded them)."""
        if self._fh.closed:
            raise WalError(f"log {self.path} is closed")
        self._fh.truncate(0)
        self._fh.seek(0)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._last_sync = time.monotonic()
        self._dirty = False

    def close(self, sync: bool = True) -> None:
        if self._fh.closed:
            return
        self.flush(sync=sync)
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
