"""Δ-aware crash recovery: rebuild state *and* timed-consistency metadata.

The paper's lifetime protocol is stateful in two ways a crash destroys:
the object versions with their lifetimes ``[X_iᵅ, X_iʷ]``, and the
node's ``Context_i`` — the latest instant whose writes it has promised
to reflect.  Restoring only the values would silently void every timed
guarantee: a revived server has been blind for its whole downtime, so it
cannot bound the Δ-visibility window of anything it last validated
before the crash.  Recovery therefore restores both, conservatively:

1. **Timescale resume.**  All persisted times live on the *persistent
   timescale*: seconds since the store was created.  ``meta.json``
   anchors that timescale to the wall clock (``origin_unix``), so the
   restart instant is ``t_restart = max(wall_now - origin_unix,
   last_persisted_time)`` — monotone across restarts even if the wall
   clock stepped backwards.  The server rebases its clock to resume at
   ``t_restart``, so post-recovery install times always exceed
   pre-crash ones (time never runs backwards through a crash).

2. **State replay.**  Load the snapshot (CRC-checked; a corrupt one is
   quarantined and recovery falls back to the log alone), then replay
   the WAL suffix in append order, installing each write iff its
   effective time exceeds the installed version's — the same
   latest-write-wins rule the live server applies.

3. **Context restore (paper §5, Rule 3 shape).**  Set
   ``Context := max(persisted Context, t_restart − Δ)``.  The second
   term is the crash-shaped instance of Rule 3: a node that must honor
   TSC(Δ) may never claim a context older than ``now − Δ``, and for a
   node that just woke up, *now* is ``t_restart``.

4. **Old-marking (the TCC invalidation rule, applied to downtime).**
   Any version whose checking time — the latest instant it was known
   current, ``X_iᵝ``, persisted here as ``omega`` — satisfies
   ``X_iᵝ < t_restart − Δ`` is marked **old**: the node cannot prove it
   was current during the blind window, so it must not serve it as
   fresh on its pre-crash evidence.  The server re-proves such a
   version on first touch by the single-authority argument: every
   acknowledged write is WAL-logged *before* its ack, the replay above
   is therefore complete, so no write can have changed the object while
   the authority was down — the touch instant becomes the new checking
   time and the version rejoins the live set (counted as a
   ``recovered revalidation``, so the event is observable).

:class:`DurableStore` packages the log + snapshot + recovery lifecycle
for one server; :func:`history_from_wal` turns a recovered store into
checker input, so the offline TSC/TCC checkers can *prove* a recovery
preserved timed consistency; :class:`SnapshotCatalog` serves object
values straight from on-disk stores for ring handoff replay.
"""

from __future__ import annotations

import json
import math
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.history import History
from repro.core.io import atomic_write_json
from repro.core.operations import Operation, write
from repro.protocol.versions import PhysicalVersion
from repro.store.snapshot import (
    SnapshotError,
    load_snapshot,
    quarantine_snapshot,
    state_from_versions,
    versions_from_state,
)
from repro.store.wal import ReplayResult, WriteAheadLog, replay

META_FILE = "meta.json"
WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot.json"

META_VERSION = 1

#: Record kinds in the WAL.
REC_WRITE = "w"  #: one installed write: obj, value, t (= alpha), writer
REC_OPEN = "open"  #: a recovery/open event: t (= t_restart), context


@dataclass
class StoreState:
    """A read-only view of a store directory (no mutation, no handles).

    What ``repro store inspect``/``verify`` and :class:`SnapshotCatalog`
    work from; :meth:`DurableStore.open` builds on the same load but
    additionally quarantines corruption and opens the WAL for appending.
    """

    root: str
    meta: Dict[str, Any]
    objects: Dict[str, PhysicalVersion]
    context: float
    last_time: float  #: latest persisted instant on the store timescale
    wal: ReplayResult
    write_records: int
    snapshot_state: Optional[Dict[str, Any]]
    snapshot_error: Optional[str]

    @property
    def clean(self) -> bool:
        """True when the next start needs no log replay: the WAL is
        empty and the snapshot was written by a graceful shutdown."""
        return (
            self.wal.clean
            and not self.wal.records
            and self.snapshot_state is not None
            and bool(self.snapshot_state.get("clean"))
        )

    @property
    def recoverable(self) -> bool:
        """True when committed state can be rebuilt (a torn WAL tail is
        recoverable — the prefix survives; a corrupt snapshot with no
        log to fall back on is not)."""
        return self.snapshot_error is None or bool(self.wal.records)


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.open` rebuilt and restored."""

    objects: Dict[str, PhysicalVersion]
    context: float
    resume_time: float  #: t_restart on the persistent timescale
    old_objects: Set[str] = field(default_factory=set)
    replayed_records: int = 0
    snapshot_loaded: bool = False
    snapshot_quarantined: Optional[str] = None
    wal_quarantined: Optional[str] = None
    quarantined_bytes: int = 0
    clean_start: bool = False  #: previous shutdown was graceful
    recovery_seconds: float = 0.0
    ring_epoch: int = 0  #: last ring epoch this device acknowledged

    @property
    def empty(self) -> bool:
        return not self.objects and self.replayed_records == 0


def _load_meta(root: str) -> Optional[Dict[str, Any]]:
    try:
        with open(os.path.join(root, META_FILE), "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # meta is re-creatable: only the wall anchor is lost


def load_state(root: str) -> StoreState:
    """Read a store directory without touching it (inspect/verify/handoff)."""
    meta = _load_meta(root) or {}
    snapshot_state: Optional[Dict[str, Any]] = None
    snapshot_error: Optional[str] = None
    try:
        snapshot_state = load_snapshot(os.path.join(root, SNAPSHOT_FILE))
    except SnapshotError as exc:
        snapshot_error = str(exc)
    objects: Dict[str, PhysicalVersion] = (
        versions_from_state(snapshot_state) if snapshot_state else {}
    )
    context = float(snapshot_state["context"]) if snapshot_state else 0.0
    last_time = float(snapshot_state["taken_at"]) if snapshot_state else 0.0
    result = replay(os.path.join(root, WAL_FILE))
    write_records = 0
    for record in result.records:
        kind = record.get("k")
        t = float(record.get("t", 0.0))
        last_time = max(last_time, t)
        if kind == REC_WRITE:
            write_records += 1
            version = PhysicalVersion(
                str(record["obj"]), record["value"], t, t,
                int(record.get("writer", -1)),
            )
            current = objects.get(version.obj)
            if current is None or t > current.alpha:
                objects[version.obj] = version
            context = max(context, t)
        elif kind == REC_OPEN:
            context = max(context, float(record.get("context", t)))
    return StoreState(
        root=root,
        meta=meta,
        objects=objects,
        context=context,
        last_time=max(last_time, context),
        wal=result,
        write_records=write_records,
        snapshot_state=snapshot_state,
        snapshot_error=snapshot_error,
    )


class DurableStore:
    """The persistence engine one object server owns.

    ``root`` is a directory holding ``wal.log``, ``snapshot.json`` and
    ``meta.json``.  Call :meth:`open` once at startup (it recovers and
    returns the rebuilt state), :meth:`log_write` before acknowledging
    each write, :meth:`maybe_snapshot` after installs, and
    :meth:`close_clean` from the graceful-shutdown path.

    ``recovery_delta`` is the freshness bound Δ the recovery rules run
    at; ``math.inf`` (the default) restores state and timescale but
    marks nothing old — right for a server whose clients enforce their
    own deltas and wrong for one that promises TSC(Δ) itself.

    ``crash_after_appends`` is a fault-injection hook for crash tests
    (and nothing else): after that many WAL appends the process SIGKILLs
    *itself* — precisely between the append and the acknowledgement,
    the window the log exists to cover.

    ``registry`` (a :class:`repro.obs.metrics.Registry`) binds
    :class:`~repro.obs.instruments.StoreInstruments`: fsync latency
    histogram, WAL record/byte counters, snapshot age gauge, recovery
    counters.
    """

    def __init__(
        self,
        root: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        recovery_delta: float = math.inf,
        snapshot_every: int = 512,
        registry: Optional[Any] = None,
        metric_labels: Optional[Dict[str, Any]] = None,
        crash_after_appends: Optional[int] = None,
    ) -> None:
        if recovery_delta < 0:
            raise ValueError(
                f"recovery_delta must be non-negative, got {recovery_delta}"
            )
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.root = root
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.recovery_delta = recovery_delta
        self.snapshot_every = snapshot_every
        self.crash_after_appends = crash_after_appends
        self.wal: Optional[WriteAheadLog] = None
        self.recovered: Optional[RecoveredState] = None
        self._appends_since_snapshot = 0
        self._last_snapshot_wall: Optional[float] = None
        self._origin_unix: Optional[float] = None
        self._meta: Dict[str, Any] = {}
        self.instruments = None
        if registry is not None:
            from repro.obs.instruments import StoreInstruments

            self.instruments = StoreInstruments(
                registry, **(metric_labels or {})
            )
            self.instruments.bind_snapshot_age(lambda: self.snapshot_age)

    # -- lifecycle -----------------------------------------------------------

    def open(self, now_wall: Optional[float] = None) -> RecoveredState:
        """Recover the directory and open the WAL for appending."""
        started = time.perf_counter()
        if now_wall is None:
            now_wall = time.time()
        os.makedirs(self.root, exist_ok=True)
        meta = _load_meta(self.root)
        if meta is None or "origin_unix" not in meta:
            meta = {"version": META_VERSION, "origin_unix": now_wall}
            atomic_write_json(os.path.join(self.root, META_FILE), meta)
        self._origin_unix = float(meta["origin_unix"])
        self._meta = dict(meta)

        snapshot_quarantined = None
        state = load_state(self.root)
        if state.snapshot_error is not None:
            snapshot_quarantined = quarantine_snapshot(
                os.path.join(self.root, SNAPSHOT_FILE)
            )
        on_fsync = (
            self.instruments.on_fsync if self.instruments is not None else None
        )
        self.wal, result, wal_sidecar = WriteAheadLog.open_recovered(
            os.path.join(self.root, WAL_FILE),
            fsync=self.fsync,
            fsync_interval=self.fsync_interval,
            on_fsync=on_fsync,
        )

        # Timescale resume: never earlier than anything already persisted.
        t_restart = max(now_wall - self._origin_unix, state.last_time, 0.0)
        context = state.context
        old: Set[str] = set()
        if not math.isinf(self.recovery_delta):
            bound = t_restart - self.recovery_delta
            context = max(context, bound)
            old = {
                obj for obj, version in state.objects.items()
                if version.omega < bound
            }
        clean_start = state.clean

        recovered = RecoveredState(
            objects=state.objects,
            context=context,
            resume_time=t_restart,
            old_objects=old,
            replayed_records=len(state.wal.records),
            snapshot_loaded=state.snapshot_state is not None,
            snapshot_quarantined=snapshot_quarantined,
            wal_quarantined=wal_sidecar,
            quarantined_bytes=result.tail_bytes,
            clean_start=clean_start,
            ring_epoch=int(meta.get("ring_epoch", 0)),
        )
        if not recovered.empty or not clean_start:
            # Persist the recovery event itself: the restored context and
            # the restart instant become part of the durable record.
            self.wal.append({
                "k": REC_OPEN, "t": t_restart, "context": context,
                "recovered": len(state.objects), "old": len(old),
            })
            self.wal.flush(sync=True)
        recovered.recovery_seconds = time.perf_counter() - started
        self.recovered = recovered
        self._last_snapshot_wall = (
            time.time() if state.snapshot_state is not None else None
        )
        if self.instruments is not None:
            self.instruments.on_recovery(recovered)
        return recovered

    def close(self, sync: bool = True) -> None:
        if self.wal is not None:
            self.wal.close(sync=sync)
            self.wal = None

    def close_clean(
        self, objects: Dict[str, PhysicalVersion], context: float, now: float
    ) -> None:
        """The graceful-shutdown path: final snapshot, truncate the WAL,
        fsync everything — the next start replays nothing."""
        self.snapshot(objects, context, now=now, clean=True)
        self.close(sync=True)

    # -- the write path ------------------------------------------------------

    def log_write(self, version: PhysicalVersion) -> None:
        """Append one installed write; call *before* acknowledging it."""
        if self.wal is None:
            raise RuntimeError("store is not open; call open() first")
        nbytes = self.wal.append({
            "k": REC_WRITE,
            "t": version.alpha,
            "obj": version.obj,
            "value": version.value,
            "writer": version.writer,
        })
        self._appends_since_snapshot += 1
        if self.instruments is not None:
            self.instruments.on_append(nbytes)
        if self.crash_after_appends is not None:
            self.crash_after_appends -= 1
            if self.crash_after_appends <= 0:
                self.wal.flush(sync=True)  # the append must hit the disk
                os.kill(os.getpid(), signal.SIGKILL)

    def log_writes(self, versions: Sequence[PhysicalVersion]) -> None:
        """Append a batch of installed writes with a single flush/fsync;
        call *before* acknowledging any of them.  The batch write path
        (``write-batch`` frames) amortizes the fsync across the batch
        while keeping the log-before-ack invariant per item."""
        if self.wal is None:
            raise RuntimeError("store is not open; call open() first")
        if not versions:
            return
        nbytes = self.wal.append_many([
            {
                "k": REC_WRITE,
                "t": version.alpha,
                "obj": version.obj,
                "value": version.value,
                "writer": version.writer,
            }
            for version in versions
        ])
        self._appends_since_snapshot += len(versions)
        if self.instruments is not None:
            self.instruments.on_append_many(len(versions), nbytes)
        if self.crash_after_appends is not None:
            self.crash_after_appends -= len(versions)
            if self.crash_after_appends <= 0:
                self.wal.flush(sync=True)  # the appends must hit the disk
                os.kill(os.getpid(), signal.SIGKILL)

    def flush(self) -> None:
        """Force buffered records to stable storage (drain path)."""
        if self.wal is not None:
            self.wal.flush(sync=True)

    # -- cluster epoch -------------------------------------------------------

    def save_epoch(self, epoch: int) -> bool:
        """Durably record the ring epoch this device has acknowledged.

        Written into ``meta.json`` (atomic rename), monotone: an older
        epoch is ignored.  On restart the server resumes from
        ``RecoveredState.ring_epoch``, so it never re-serves a layout
        the cluster already moved past.  Returns whether it persisted.
        """
        if epoch <= int(self._meta.get("ring_epoch", 0)):
            return False
        self._meta["ring_epoch"] = int(epoch)
        self._meta.setdefault("version", META_VERSION)
        if self._origin_unix is not None:
            self._meta.setdefault("origin_unix", self._origin_unix)
        atomic_write_json(os.path.join(self.root, META_FILE), self._meta)
        return True

    # -- snapshots -----------------------------------------------------------

    def snapshot(
        self,
        objects: Dict[str, PhysicalVersion],
        context: float,
        *,
        now: float,
        clean: bool = False,
    ) -> None:
        """Write a compacted snapshot and truncate the WAL behind it."""
        from repro.store.snapshot import write_snapshot

        write_snapshot(
            os.path.join(self.root, SNAPSHOT_FILE),
            state_from_versions(
                objects, taken_at=now, context=context, clean=clean
            ),
        )
        if self.wal is not None:
            self.wal.truncate()
        self._appends_since_snapshot = 0
        self._last_snapshot_wall = time.time()
        if self.instruments is not None:
            self.instruments.on_snapshot()

    def maybe_snapshot(
        self, objects: Dict[str, PhysicalVersion], context: float, now: float
    ) -> bool:
        """Snapshot iff ``snapshot_every`` appends accumulated since the
        last one; returns whether a snapshot was written."""
        if self._appends_since_snapshot < self.snapshot_every:
            return False
        self.snapshot(objects, context, now=now)
        return True

    @property
    def snapshot_age(self) -> float:
        """Wall seconds since the last snapshot (inf when none exists)."""
        if self._last_snapshot_wall is None:
            return math.inf
        return max(0.0, time.time() - self._last_snapshot_wall)


class SnapshotCatalog:
    """Object values served straight from on-disk stores.

    The handoff source that survives a crashed donor:
    :func:`repro.ring.rebalance.replay_handoff` reads moved objects from
    here (the durable truth) instead of the donor's live memory.  States
    are loaded lazily, once per device, read-only.
    """

    def __init__(self, roots: Dict[int, str]) -> None:
        self.roots = dict(roots)
        self._states: Dict[int, StoreState] = {}

    def state(self, device: int) -> StoreState:
        if device not in self._states:
            root = self.roots.get(device)
            if root is None:
                raise KeyError(f"no store directory for device {device}")
            self._states[device] = load_state(root)
        return self._states[device]

    def read(self, device: int, obj: str) -> Any:
        """The durably recorded value of ``obj`` on ``device``; raises
        :class:`KeyError` when the store never recorded one."""
        version = self.state(device).objects.get(obj)
        if version is None:
            raise KeyError(f"device {device} has no durable record of {obj!r}")
        return version.value

    def invalidate(self, device: Optional[int] = None) -> None:
        """Drop cached states (all, or one device's) so the next read
        re-loads from disk."""
        if device is None:
            self._states.clear()
        else:
            self._states.pop(device, None)


def history_from_wal(
    path: str,
    *,
    initial_value: Any = 0,
    include_snapshot: bool = True,
    validate: bool = False,
) -> History:
    """A recovered store (or bare WAL file) as checker input.

    Every durably recorded write becomes a ``w`` operation at its
    effective time, sited at its writer — exactly the server-side ground
    truth a :class:`~repro.sim.trace.TraceRecorder` would have held.
    Merge it with the clients' recorded traces (the ``repro merge``
    dedup handles the overlap: an acknowledged write appears in both)
    and the offline TSC/TCC checkers can *prove* that recovery preserved
    timed consistency — including for writes that were logged but whose
    acknowledgement the crash ate.

    ``path`` may be a store directory or a WAL file.  With
    ``include_snapshot`` (directories only), writes compacted into the
    snapshot are reconstructed from its object states, so compaction
    does not hide history from the checker.  Validation defaults off: a
    WAL holds only writes, and reads-from validation needs the merged
    trace.
    """
    operations: List[Operation] = []
    seen = set()

    def add_write(site: int, obj: str, value: Any, t: float) -> None:
        key = (site, obj, value, t)
        if key in seen:
            return
        seen.add(key)
        operations.append(write(site, obj, value, t))

    if os.path.isdir(path):
        state = load_state(path)
        if include_snapshot and state.snapshot_state is not None:
            for obj, fields in state.snapshot_state.get("objects", {}).items():
                writer = int(fields.get("writer", -1))
                alpha = float(fields["alpha"])
                if writer < 0 and alpha == 0.0:
                    continue  # the implicit initial value, not a write
                add_write(writer, obj, fields["value"], alpha)
        records = state.wal.records
    else:
        records = replay(path).records
    for record in records:
        if record.get("k") != REC_WRITE:
            continue
        add_write(
            int(record.get("writer", -1)),
            str(record["obj"]),
            record["value"],
            float(record["t"]),
        )
    return History(
        operations, initial_value=initial_value, validate=validate
    )
