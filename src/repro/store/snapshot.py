"""Compacted snapshots of the object store.

A snapshot is the periodic full-state checkpoint that lets the WAL be
truncated: recovery loads the snapshot and replays only the log suffix
written after it.  The file is one JSON document,

```json
{
  "version": 1,
  "crc": 3735928559,
  "state": {
    "taken_at": 12.75,
    "context": 12.75,
    "clean": false,
    "objects": {
      "x": {"value": "s1.7", "alpha": 12.1, "omega": 12.7, "writer": 1}
    }
  }
}
```

written atomically (tmp + fsync + rename, the shared
:func:`repro.core.io.atomic_write_json` helper) so a crash mid-snapshot
leaves the previous snapshot intact, and checksummed (CRC32 over the
canonical ``state`` serialization) so a torn or rotted file is detected
rather than trusted.  ``taken_at`` and every lifetime live on the
store's *persistent timescale* (see :mod:`repro.store.recovery`);
``clean`` marks a snapshot written by a graceful shutdown — the next
start can skip log replay entirely because the WAL was truncated right
after it.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Optional

from repro.core.io import atomic_write_json
from repro.protocol.versions import PhysicalVersion

SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot file that cannot be trusted (bad CRC, bad shape)."""


def _canonical(state: Dict[str, Any]) -> bytes:
    return json.dumps(state, separators=(",", ":"), sort_keys=True).encode("utf-8")


def state_from_versions(
    objects: Dict[str, PhysicalVersion],
    *,
    taken_at: float,
    context: float,
    clean: bool = False,
) -> Dict[str, Any]:
    """The JSON-able snapshot state for a live version dict."""
    return {
        "taken_at": taken_at,
        "context": context,
        "clean": clean,
        "objects": {
            obj: {
                "value": version.value,
                "alpha": version.alpha,
                "omega": version.omega,
                "writer": version.writer,
            }
            for obj, version in objects.items()
        },
    }


def versions_from_state(state: Dict[str, Any]) -> Dict[str, PhysicalVersion]:
    """Rebuild the version dict a snapshot state describes."""
    return {
        obj: PhysicalVersion(
            obj,
            fields["value"],
            float(fields["alpha"]),
            float(fields["omega"]),
            int(fields.get("writer", -1)),
        )
        for obj, fields in state.get("objects", {}).items()
    }


def write_snapshot(path: str, state: Dict[str, Any]) -> None:
    """Atomically persist one snapshot state (tmp + rename, CRC)."""
    atomic_write_json(
        path,
        {
            "version": SNAPSHOT_VERSION,
            "crc": zlib.crc32(_canonical(state)),
            "state": state,
        },
    )


def load_snapshot(path: str) -> Optional[Dict[str, Any]]:
    """Load and CRC-verify a snapshot; ``None`` when no snapshot exists.

    Raises :class:`SnapshotError` on a file that exists but cannot be
    trusted — recovery then quarantines it and falls back to the WAL.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"undecodable snapshot {path}: {exc}") from None
    if not isinstance(document, dict) or "state" not in document:
        raise SnapshotError(f"{path} is not a snapshot file")
    state = document["state"]
    if zlib.crc32(_canonical(state)) != document.get("crc"):
        raise SnapshotError(f"snapshot CRC mismatch in {path}")
    return state


def quarantine_snapshot(path: str) -> Optional[str]:
    """Move a corrupt snapshot aside (``*.corrupt-<n>``); returns the
    sidecar path, or ``None`` when there was nothing to move."""
    if not os.path.exists(path):
        return None
    n = 0
    while True:
        sidecar = f"{path}.corrupt-{n}"
        if not os.path.exists(sidecar):
            break
        n += 1
    os.replace(path, sidecar)
    return sidecar
