"""repro.store — durable state for the timed object servers.

An append-only write-ahead log (:mod:`repro.store.wal`), CRC-checked
compacted snapshots (:mod:`repro.store.snapshot`), and Δ-aware crash
recovery (:mod:`repro.store.recovery`) that restores not just object
values but the timed-consistency metadata the paper's lifetime protocol
depends on: ``Context_i`` and the version lifetimes.  See docs/STORE.md
for the on-disk formats and the recovery argument.
"""

from repro.store.recovery import (
    DurableStore,
    RecoveredState,
    SnapshotCatalog,
    StoreState,
    history_from_wal,
    load_state,
)
from repro.store.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshot,
    quarantine_snapshot,
    state_from_versions,
    versions_from_state,
    write_snapshot,
)
from repro.store.wal import (
    FSYNC_POLICIES,
    MAX_RECORD_BYTES,
    ReplayResult,
    WalError,
    WriteAheadLog,
    decode_record,
    encode_record,
    quarantine_tail,
    replay,
)

__all__ = [
    "DurableStore",
    "FSYNC_POLICIES",
    "MAX_RECORD_BYTES",
    "RecoveredState",
    "ReplayResult",
    "SNAPSHOT_VERSION",
    "SnapshotCatalog",
    "SnapshotError",
    "StoreState",
    "WalError",
    "WriteAheadLog",
    "decode_record",
    "encode_record",
    "history_from_wal",
    "load_snapshot",
    "load_state",
    "quarantine_snapshot",
    "quarantine_tail",
    "replay",
    "state_from_versions",
    "versions_from_state",
    "write_snapshot",
]
