"""The origin web server: GET, if-modified-since, and invalidation callbacks.

Message kinds reuse HTTP vocabulary: ``GET`` returns the full document
(``RESPONSE``); ``IMS`` (if-modified-since, carrying the client's
``last_modified``) returns either ``NOT_MODIFIED`` (a cheap control
message — the Section 5.2 point about avoiding large transfers) or a full
``RESPONSE``.  With the invalidation policy (Cao & Liu [10]) the origin
remembers which caches hold each document and sends them ``INVALIDATE``
when it changes.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.sim.kernel import Simulator
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.webcache.documents import DocumentVersion

GET = "http-get"
IMS = "http-ims"
RESPONSE = "http-response"
NOT_MODIFIED = "http-304"
INVALIDATE = "http-invalidate"

#: Size units: full documents vs control messages.
DOC_SIZE = 25
CTRL_SIZE = 1


def size_of(kind: str) -> int:
    return DOC_SIZE if kind == RESPONSE else CTRL_SIZE


class OriginServer(Node):
    """Authoritative store of web documents."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        track_caches: bool = False,
        recorder=None,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.track_caches = track_caches
        self.recorder = recorder
        self.documents: Dict[str, DocumentVersion] = {}
        self.holders: Dict[str, Set[int]] = {}
        self.requests_served = 0
        self.ims_served = 0
        self.invalidations_sent = 0

    # -- content management ---------------------------------------------------

    def install(self, name: str, body: str, now: float) -> None:
        """Install a fresh version (called by the modification process)."""
        self.current(name)  # materialize v0 first so the trace stays legal
        self.documents[name] = DocumentVersion(name, body, now)
        if self.recorder is not None:
            self.recorder.record_write(self.node_id, name, body, now)
        if self.track_caches:
            for cache_id in sorted(self.holders.get(name, ())):
                self.send(cache_id, INVALIDATE, {"name": name}, size=CTRL_SIZE)
                self.invalidations_sent += 1
            self.holders[name] = set()

    def current(self, name: str) -> DocumentVersion:
        if name not in self.documents:
            self.documents[name] = DocumentVersion(name, f"{name}#v0", 0.0)
            if self.recorder is not None:
                self.recorder.record_write(self.node_id, name, f"{name}#v0", 0.0)
        return self.documents[name]

    # -- request handling -------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == GET:
            self._on_get(message)
        elif message.kind == IMS:
            self._on_ims(message)
        else:
            raise ValueError(f"origin cannot handle {message.kind}")

    def _remember_holder(self, name: str, cache_id: int) -> None:
        if self.track_caches:
            self.holders.setdefault(name, set()).add(cache_id)

    def _on_get(self, message: Message) -> None:
        name = message.payload["name"]
        doc = self.current(name)
        self.requests_served += 1
        self._remember_holder(name, message.src)
        self.send(
            message.src,
            RESPONSE,
            {
                "doc": DocumentVersion(doc.name, doc.body, doc.last_modified),
                "req": message.payload.get("req"),
                "fetched_at": self.sim.now,
                "piggyback": self._piggyback_verdicts(message),
            },
            size=size_of(RESPONSE),
        )

    def _piggyback_verdicts(self, message: Message) -> dict:
        """Answer a batched if-modified-since list riding on a request
        (piggyback cache validation): {name: validated_at | None}, where
        None means "changed, refetch"."""
        verdicts = {}
        for name, since in message.payload.get("piggyback", {}).items():
            doc = self.current(name)
            self.ims_served += 1
            self._remember_holder(name, message.src)
            verdicts[name] = self.sim.now if doc.last_modified <= since else None
        return verdicts

    def _on_ims(self, message: Message) -> None:
        name = message.payload["name"]
        since = message.payload["last_modified"]
        doc = self.current(name)
        self.requests_served += 1
        self.ims_served += 1
        self._remember_holder(name, message.src)
        piggyback = self._piggyback_verdicts(message)
        if doc.last_modified <= since:
            self.send(
                message.src,
                NOT_MODIFIED,
                {
                    "name": name,
                    "req": message.payload.get("req"),
                    "validated_at": self.sim.now,
                    "piggyback": piggyback,
                },
                size=size_of(NOT_MODIFIED),
            )
        else:
            self.send(
                message.src,
                RESPONSE,
                {
                    "doc": DocumentVersion(doc.name, doc.body, doc.last_modified),
                    "req": message.payload.get("req"),
                    "fetched_at": self.sim.now,
                    "piggyback": piggyback,
                },
                size=size_of(RESPONSE),
            )
