"""Web cache consistency policies, each a timed-consistency protocol.

Section 4: "Web cache consistency protocols can be modeled as timed
consistency protocols ... [Gwertzman & Seltzer] and [Cao & Liu] distinguish
between weak and strong consistency of web documents, which can be modeled
with different values of delta."  The mapping implemented here:

==================  =============================================
policy              effective delta it guarantees
==================  =============================================
poll-every-time     ~0 (a round trip; strong consistency)
fixed TTL(t)        t (a read never misses a write older than t)
adaptive TTL        bounded by ``max_ttl``, usually far smaller —
                    TTL = factor * document age (the Alex protocol
                    [11], favored by [19])
invalidation        ~network latency (server-driven, [10])
==================  =============================================

Each policy answers one question — *is this cached entry still usable
without contacting the origin?* — via :meth:`fresh_until`, which returns
the expiry instant computed when the entry was stored/validated.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.webcache.documents import DocumentVersion


@dataclass
class WebCacheEntry:
    """A cached document plus policy bookkeeping."""

    doc: DocumentVersion
    fetched_at: float
    validated_at: float
    expires_at: float
    invalidated: bool = False


class CachePolicy(ABC):
    """Strategy deciding entry freshness lifetimes."""

    #: Does this policy need the origin to track holders and push
    #: invalidations?
    needs_invalidations = False
    #: Does this policy batch-validate expired entries on any origin trip?
    piggyback = False
    #: Cap on piggybacked validations per request.
    max_batch = 0

    @abstractmethod
    def fresh_until(self, doc: DocumentVersion, validated_at: float) -> float:
        """The instant until which the entry may be served with no
        messages, given it was validated at ``validated_at``."""

    def effective_delta(self) -> float:
        """The staleness bound this policy guarantees (for reporting)."""
        return math.inf

    @property
    def name(self) -> str:
        return type(self).__name__


class PollEveryTime(CachePolicy):
    """Validate on every request: strong consistency, maximal traffic."""

    def fresh_until(self, doc: DocumentVersion, validated_at: float) -> float:
        return validated_at  # immediately stale

    def effective_delta(self) -> float:
        return 0.0


class FixedTTL(CachePolicy):
    """Serve from cache for ``ttl`` seconds after each validation."""

    def __init__(self, ttl: float) -> None:
        if ttl < 0:
            raise ValueError(f"ttl must be non-negative, got {ttl}")
        self.ttl = ttl

    def fresh_until(self, doc: DocumentVersion, validated_at: float) -> float:
        return validated_at + self.ttl

    def effective_delta(self) -> float:
        return self.ttl

    @property
    def name(self) -> str:
        return f"FixedTTL({self.ttl:g})"


class PiggybackTTL(FixedTTL):
    """Fixed TTL plus *piggyback cache validation* (Krishnamurthy &
    Wills): whenever any request travels to the origin, the cache rides a
    batch of its currently-expired entries along for bulk
    if-modified-since validation, amortizing freshness checks over
    traffic that was happening anyway.  Same staleness bound as
    ``FixedTTL(ttl)``, fewer request round trips."""

    piggyback = True
    max_batch = 20

    @property
    def name(self) -> str:
        return f"PiggybackTTL({self.ttl:g})"


class AdaptiveTTL(CachePolicy):
    """The Alex-protocol adaptive TTL [11], as studied in [19].

    TTL is a fraction of the document's *age* at validation time: a
    document unchanged for a month gets a long TTL; one modified a minute
    ago gets a short one.  Bounded by [min_ttl, max_ttl].
    """

    def __init__(
        self, factor: float = 0.2, min_ttl: float = 0.05, max_ttl: float = 60.0
    ) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if not 0 <= min_ttl <= max_ttl:
            raise ValueError(f"need 0 <= min_ttl <= max_ttl, got {min_ttl}, {max_ttl}")
        self.factor = factor
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl

    def fresh_until(self, doc: DocumentVersion, validated_at: float) -> float:
        age = max(0.0, validated_at - doc.last_modified)
        ttl = min(self.max_ttl, max(self.min_ttl, self.factor * age))
        return validated_at + ttl

    def effective_delta(self) -> float:
        return self.max_ttl

    @property
    def name(self) -> str:
        return f"AdaptiveTTL(x{self.factor:g})"


class ServerInvalidation(CachePolicy):
    """Cache entries live until the origin invalidates them [10]."""

    needs_invalidations = True

    def fresh_until(self, doc: DocumentVersion, validated_at: float) -> float:
        return math.inf  # fresh until an INVALIDATE arrives

    def effective_delta(self) -> float:
        return 0.0  # up to one-way latency, in practice

    @property
    def name(self) -> str:
        return "ServerInvalidation"


@dataclass
class WebCacheStats:
    """Per-cache counters (bandwidth is tracked by the network)."""

    requests: int = 0
    hits: int = 0
    ims_sent: int = 0
    not_modified: int = 0
    full_responses: int = 0
    invalidations_received: int = 0
    piggyback_validations: int = 0
    latencies: list = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def origin_requests(self) -> int:
        """Requests that reached the origin (server load, per [19])."""
        return self.requests - self.hits
