"""A client-side web cache driven by a :class:`CachePolicy`."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.sim.kernel import Event, Simulator
from repro.sim.network import Message, Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder
from repro.webcache import origin as http
from repro.webcache.documents import DocumentVersion
from repro.webcache.policies import CachePolicy, WebCacheEntry, WebCacheStats


class WebCache(Node):
    """Caches documents from one origin under a consistency policy."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        origin_id: int,
        policy: CachePolicy,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.origin_id = origin_id
        self.policy = policy
        self.recorder = recorder
        self.entries: Dict[str, WebCacheEntry] = {}
        self.stats = WebCacheStats()
        self._requests = itertools.count()
        self._pending: Dict[int, Any] = {}

    # -- public API --------------------------------------------------------

    def request(self, name: str) -> Event:
        """GET a document; the event succeeds with the body."""
        self.stats.requests += 1
        event = self.sim.event()
        entry = self.entries.get(name)
        if entry is not None and not entry.invalidated and self.sim.now <= entry.expires_at:
            self.stats.hits += 1
            self.stats.latencies.append(0.0)
            self._record(name, entry.doc.body)
            event.succeed(entry.doc.body)
            return event
        req = next(self._requests)
        self._pending[req] = (name, event, self.sim.now)
        piggyback = self._piggyback_batch(exclude=name)
        if entry is not None and not entry.invalidated:
            self.stats.ims_sent += 1
            self.send(
                self.origin_id,
                http.IMS,
                {
                    "name": name,
                    "last_modified": entry.doc.last_modified,
                    "req": req,
                    "piggyback": piggyback,
                },
                size=http.size_of(http.IMS),
            )
        else:
            self.send(
                self.origin_id,
                http.GET,
                {"name": name, "req": req, "piggyback": piggyback},
                size=http.size_of(http.GET),
            )
        return event

    def _piggyback_batch(self, exclude: str) -> Dict[str, float]:
        """Expired-but-valid entries to bulk-validate on this trip."""
        if not getattr(self.policy, "piggyback", False):
            return {}
        batch: Dict[str, float] = {}
        for name, entry in self.entries.items():
            if name == exclude or entry.invalidated:
                continue
            if self.sim.now > entry.expires_at:
                batch[name] = entry.doc.last_modified
                if len(batch) >= self.policy.max_batch:
                    break
        self.stats.piggyback_validations += len(batch)
        return batch

    def _apply_piggyback(self, verdicts: Dict[str, Any]) -> None:
        for name, validated_at in verdicts.items():
            entry = self.entries.get(name)
            if entry is None:
                continue
            if validated_at is None:
                entry.invalidated = True  # changed: next access refetches
            else:
                entry.validated_at = validated_at
                entry.expires_at = self.policy.fresh_until(entry.doc, validated_at)

    # -- message handling ----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == http.RESPONSE:
            self._on_response(message)
        elif message.kind == http.NOT_MODIFIED:
            self._on_not_modified(message)
        elif message.kind == http.INVALIDATE:
            self._on_invalidate(message)
        else:
            raise ValueError(f"web cache cannot handle {message.kind}")

    def _on_response(self, message: Message) -> None:
        doc: DocumentVersion = message.payload["doc"]
        fetched_at = message.payload["fetched_at"]
        self.stats.full_responses += 1
        self._apply_piggyback(message.payload.get("piggyback", {}))
        self.entries[doc.name] = WebCacheEntry(
            doc=doc,
            fetched_at=fetched_at,
            validated_at=fetched_at,
            expires_at=self.policy.fresh_until(doc, fetched_at),
        )
        self._complete(message.payload.get("req"), doc.body)

    def _on_not_modified(self, message: Message) -> None:
        name = message.payload["name"]
        validated_at = message.payload["validated_at"]
        self.stats.not_modified += 1
        self._apply_piggyback(message.payload.get("piggyback", {}))
        entry = self.entries.get(name)
        body = None
        if entry is not None:
            entry.validated_at = validated_at
            entry.expires_at = self.policy.fresh_until(entry.doc, validated_at)
            entry.invalidated = False
            body = entry.doc.body
        self._complete(message.payload.get("req"), body)

    def _on_invalidate(self, message: Message) -> None:
        name = message.payload["name"]
        self.stats.invalidations_received += 1
        entry = self.entries.get(name)
        if entry is not None:
            entry.invalidated = True

    # -- helpers ----------------------------------------------------------------

    def _complete(self, req: Optional[int], body: Optional[str]) -> None:
        pending = self._pending.pop(req, None)
        if pending is None:
            return
        name, event, issued_at = pending
        self.stats.latencies.append(self.sim.now - issued_at)
        self._record(name, body)
        event.succeed(body)

    def _record(self, name: str, body: Optional[str]) -> None:
        if self.recorder is not None:
            self.recorder.record_read(self.node_id, name, body, self.sim.now)
