"""Web cache experiment harness: the Section 4 protocol comparison.

Builds origin + N client caches + Zipf request workload + document
modification process, runs each consistency policy on the *same* seeds,
and reports the rows the web-caching literature compares: hit ratio,
bandwidth, server load, and ground-truth staleness (stale-hit fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.analysis.metrics import staleness_report
from repro.core.history import History
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network, UniformLatency
from repro.sim.rng import RngRegistry, ZipfSampler, exponential
from repro.sim.trace import TraceRecorder
from repro.webcache.documents import ModificationProcess, doc_name
from repro.webcache.origin import OriginServer
from repro.webcache.policies import CachePolicy, WebCacheStats
from repro.webcache.proxy import WebCache


@dataclass
class WebExperimentResult:
    """Everything one policy run produces."""

    policy: str
    history: History
    cache_stats: List[WebCacheStats]
    origin_requests: int
    ims_requests: int
    invalidations: int
    messages: int
    bytes: int

    def row(self) -> Dict[str, Any]:
        stats = WebCacheStats()
        for s in self.cache_stats:
            stats.requests += s.requests
            stats.hits += s.hits
            stats.ims_sent += s.ims_sent
            stats.not_modified += s.not_modified
            stats.full_responses += s.full_responses
            stats.invalidations_received += s.invalidations_received
        stale = staleness_report(self.history)
        return {
            "policy": self.policy,
            "requests": stats.requests,
            "hit_ratio": stats.hit_ratio,
            "server_load": self.origin_requests,
            "bytes": self.bytes,
            "invalidations": self.invalidations,
            "mean_staleness": stale.mean,
            "max_staleness": stale.maximum,
            "stale_frac": stale.stale_fraction,
        }


def run_web_experiment(
    policy: CachePolicy,
    n_caches: int = 5,
    n_docs: int = 20,
    requests_per_cache: int = 150,
    zipf_alpha: float = 0.9,
    mean_request_interval: float = 0.05,
    mean_modify_interval: float = 3.0,
    modification_model: str = "exponential",
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
) -> WebExperimentResult:
    """Run one policy to completion under a fixed seed."""
    sim = Simulator()
    rngs = RngRegistry(seed)
    network = Network(
        sim,
        latency_model=latency or UniformLatency(0.005, 0.03),
        rng=rngs.stream("network"),
    )
    recorder = TraceRecorder(initial_value=None)
    origin = OriginServer(
        0, sim, network, track_caches=policy.needs_invalidations, recorder=recorder
    )
    caches = [
        WebCache(i + 1, sim, network, origin_id=0, policy=policy, recorder=recorder)
        for i in range(n_caches)
    ]
    ModificationProcess(
        sim,
        origin,
        n_docs,
        rngs.stream("modify"),
        mean_interval=mean_modify_interval,
        model=modification_model,
    )

    def browse(cache: WebCache, rng) -> Generator:
        sampler = ZipfSampler(n_docs, zipf_alpha, rng)
        for _ in range(requests_per_cache):
            yield sim.timeout(exponential(rng, 1.0 / mean_request_interval))
            yield cache.request(doc_name(sampler.sample()))

    for index, cache in enumerate(caches):
        sim.process(browse(cache, rngs.stream(f"browse:{index}")), name=f"browse{index}")

    # The modification process loops forever; run until the browsers are
    # done, which is when the event queue only holds modifier timeouts.
    horizon = requests_per_cache * mean_request_interval * 40
    sim.run(until=horizon)

    return WebExperimentResult(
        policy=policy.name,
        history=recorder.history(),
        cache_stats=[c.stats for c in caches],
        origin_requests=origin.requests_served,
        ims_requests=origin.ims_served,
        invalidations=origin.invalidations_sent,
        messages=network.stats.messages_sent,
        bytes=network.stats.bytes_sent,
    )


def compare_policies(
    policies: List[CachePolicy],
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Run each policy under identical seeds; return report rows."""
    return [run_web_experiment(policy, **kwargs).row() for policy in policies]
