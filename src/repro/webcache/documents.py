"""Web documents and their modification processes.

The paper's Section 4 discusses WWW cache consistency as a timed
consistency problem.  We model an origin site holding documents that are
modified by a background process; each modification installs a fresh
unique version string, so web traces can be fed to the same checkers as
object traces (the DESIGN.md substitution for real WWW traces: Zipf
request popularity plus heavy-tailed modification intervals preserve the
shape the TTL-vs-invalidation comparisons depend on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.sim.kernel import Simulator
from repro.sim.rng import exponential, lognormal


@dataclass
class DocumentVersion:
    """One version of a document: unique body tag + modification time."""

    name: str
    body: str
    last_modified: float


def doc_name(i: int) -> str:
    """Canonical name of the i-th document."""
    return f"doc{i}"


class ModificationProcess:
    """Drives modifications of a document set at the origin.

    Two interval models: ``"exponential"`` (memoryless updates, rate per
    document scaled by popularity rank so hot documents change faster —
    the adversarial case for weak consistency) and ``"lognormal"``
    (heavy-tailed quiet periods, the Alex/adaptive-TTL-friendly case).
    """

    def __init__(
        self,
        sim: Simulator,
        origin,
        n_docs: int,
        rng,
        mean_interval: float = 5.0,
        model: str = "exponential",
        hot_docs_change_faster: bool = True,
    ) -> None:
        if model not in ("exponential", "lognormal"):
            raise ValueError(f"unknown modification model {model!r}")
        self.sim = sim
        self.origin = origin
        self.n_docs = n_docs
        self.rng = rng
        self.mean_interval = mean_interval
        self.model = model
        self.hot_docs_change_faster = hot_docs_change_faster
        self._counter = 0
        for i in range(n_docs):
            sim.process(self._modify_loop(i), name=f"modify:{doc_name(i)}")

    def _interval(self, rank: int) -> float:
        mean = self.mean_interval
        if self.hot_docs_change_faster:
            mean = self.mean_interval * (1.0 + rank / 4.0)
        if self.model == "exponential":
            return exponential(self.rng, 1.0 / mean)
        return lognormal(self.rng, mean, sigma=1.0)

    def _modify_loop(self, rank: int) -> Generator:
        name = doc_name(rank)
        while True:
            yield self.sim.timeout(self._interval(rank))
            self._counter += 1
            self.origin.install(name, f"{name}#v{self._counter}", self.sim.now)


def document_names(n_docs: int) -> List[str]:
    """The first ``n_docs`` canonical document names."""
    return [doc_name(i) for i in range(n_docs)]
