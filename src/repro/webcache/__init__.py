"""Web cache consistency as timed consistency (Section 4 of the paper)."""

from repro.webcache.documents import (
    DocumentVersion,
    ModificationProcess,
    doc_name,
    document_names,
)
from repro.webcache.harness import (
    WebExperimentResult,
    compare_policies,
    run_web_experiment,
)
from repro.webcache.origin import OriginServer
from repro.webcache.policies import (
    AdaptiveTTL,
    CachePolicy,
    FixedTTL,
    PiggybackTTL,
    PollEveryTime,
    ServerInvalidation,
    WebCacheEntry,
    WebCacheStats,
)
from repro.webcache.proxy import WebCache

__all__ = [
    "AdaptiveTTL",
    "CachePolicy",
    "DocumentVersion",
    "FixedTTL",
    "ModificationProcess",
    "OriginServer",
    "PiggybackTTL",
    "PollEveryTime",
    "ServerInvalidation",
    "WebCache",
    "WebCacheEntry",
    "WebCacheStats",
    "WebExperimentResult",
    "compare_policies",
    "doc_name",
    "document_names",
    "run_web_experiment",
]
