"""Clock substrates for timed consistency.

Physical clocks (perfect / skewed / drifting / epsilon-synchronized) back
Definitions 1-2; logical clocks (Lamport, vector, plausible) back the causal
protocols of Section 5.3 and the logical-clock approximation of timed
consistency in Section 5.4 via the xi maps.
"""

from repro.clocks.base import (
    LogicalClock,
    LogicalTimestamp,
    Ordering,
    compare_physical,
    definitely_before,
)
from repro.clocks.lamport import LamportClock, ScalarTimestamp
from repro.clocks.physical import (
    DriftingClock,
    ManualTime,
    PerfectClock,
    PhysicalClock,
    SkewedClock,
    SynchronizedClock,
    TimeServer,
    measured_epsilon,
    pairwise_epsilon,
)
from repro.clocks.rebase import RebasedClock
from repro.clocks.plausible import (
    CombClock,
    CombTimestamp,
    KLamportClock,
    KLamportTimestamp,
    REVClock,
    REVTimestamp,
)
from repro.clocks.vector import VectorClock, VectorTimestamp
from repro.clocks.xi import (
    EuclideanXi,
    FunctionXi,
    PNormXi,
    SumXi,
    WeightedXi,
    XiMap,
    figure7_examples,
    logical_delta_elapsed,
    validate_xi,
)

__all__ = [
    "CombClock",
    "CombTimestamp",
    "DriftingClock",
    "EuclideanXi",
    "FunctionXi",
    "KLamportClock",
    "KLamportTimestamp",
    "LamportClock",
    "LogicalClock",
    "LogicalTimestamp",
    "ManualTime",
    "Ordering",
    "PNormXi",
    "PerfectClock",
    "PhysicalClock",
    "REVClock",
    "REVTimestamp",
    "RebasedClock",
    "ScalarTimestamp",
    "SkewedClock",
    "SumXi",
    "SynchronizedClock",
    "TimeServer",
    "VectorClock",
    "VectorTimestamp",
    "WeightedXi",
    "XiMap",
    "compare_physical",
    "definitely_before",
    "figure7_examples",
    "logical_delta_elapsed",
    "measured_epsilon",
    "pairwise_epsilon",
    "validate_xi",
]
