"""Simulated physical clocks and clock synchronization (Section 3.2).

The paper's timed definitions are stated first for *perfectly synchronized*
clocks (Definition 1) and then for *approximately synchronized* clocks
(Definition 2): periodic resynchronizations guarantee that no two clocks
differ by more than ``epsilon`` units of time, typically by keeping each
clock within ``epsilon / 2`` of a time server [Cristian, NTP, ...].

Since we run on a simulator rather than a testbed, these classes model that
behaviour explicitly and deterministically:

* :class:`PerfectClock` — reads simulated real time exactly (``epsilon = 0``).
* :class:`SkewedClock` — constant offset from real time.
* :class:`DriftingClock` — a rate error (drift, in seconds/second) plus an
  initial offset; the error grows linearly between resynchronizations.
* :class:`SynchronizedClock` — a drifting clock that is resynchronized
  against a :class:`TimeServer` every ``sync_interval``; given drift bound
  ``rho`` and residual sync error ``sync_error``, its guaranteed precision
  is ``epsilon/2 = sync_error + rho * sync_interval``, matching the paper's
  "difference between any clock and the real time ... is never more than
  epsilon/2" assumption.

All clocks read the simulated real time through a ``time_source`` callable
so they plug directly into :mod:`repro.sim`.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

TimeSource = Callable[[], float]


class PhysicalClock:
    """Base class: a clock that converts simulated real time to local time."""

    def __init__(self, time_source: TimeSource) -> None:
        self._time_source = time_source

    def real_time(self) -> float:
        """The simulator's ground-truth time (not observable by protocols)."""
        return self._time_source()

    def now(self) -> float:
        """The local clock reading; subclasses add skew/drift."""
        return self.real_time()

    @property
    def epsilon_bound(self) -> float:
        """A bound on ``2 * |now() - real_time()|``: the pairwise precision
        ``epsilon`` this clock contributes to. ``0.0`` for a perfect clock."""
        return 0.0


class PerfectClock(PhysicalClock):
    """Reads simulated real time exactly: the Definition-1 regime."""


class SkewedClock(PhysicalClock):
    """A clock with a constant offset from real time."""

    def __init__(self, time_source: TimeSource, offset: float) -> None:
        super().__init__(time_source)
        self.offset = float(offset)

    def now(self) -> float:
        return self.real_time() + self.offset

    @property
    def epsilon_bound(self) -> float:
        return 2.0 * abs(self.offset)


class DriftingClock(PhysicalClock):
    """A clock with rate error ``drift`` (seconds gained per real second)
    and an initial ``offset``; never resynchronized."""

    def __init__(
        self,
        time_source: TimeSource,
        drift: float = 0.0,
        offset: float = 0.0,
    ) -> None:
        super().__init__(time_source)
        self.drift = float(drift)
        self._base_real = self.real_time()
        self._base_local = self._base_real + float(offset)

    def now(self) -> float:
        elapsed = self.real_time() - self._base_real
        return self._base_local + elapsed * (1.0 + self.drift)

    def set_to(self, local_time: float) -> None:
        """Step the clock to ``local_time`` (used by synchronization)."""
        self._base_real = self.real_time()
        self._base_local = float(local_time)

    @property
    def epsilon_bound(self) -> float:
        # Unbounded without resynchronization; report current error.
        return 2.0 * abs(self.now() - self.real_time())


class TimeServer:
    """A reference time source that answers queries with bounded error.

    ``read()`` returns the true time perturbed by at most ``max_error``
    (uniformly, from a seeded RNG), modelling the residual uncertainty of a
    Cristian-style synchronization round trip.
    """

    def __init__(
        self,
        time_source: TimeSource,
        max_error: float = 0.0,
        seed: int = 0,
    ) -> None:
        if max_error < 0:
            raise ValueError(f"max_error must be non-negative, got {max_error}")
        self._time_source = time_source
        self.max_error = float(max_error)
        self._rng = random.Random(seed)

    def read(self) -> float:
        if self.max_error == 0.0:
            return self._time_source()
        return self._time_source() + self._rng.uniform(-self.max_error, self.max_error)


class SynchronizedClock(PhysicalClock):
    """A drifting clock kept within ``epsilon/2`` of the time server.

    The owner must call :meth:`maybe_sync` whenever the site is scheduled
    (the simulator's node loop does this); if ``sync_interval`` has elapsed
    since the last synchronization the clock is stepped to the server's
    reading.  Between syncs the local error is bounded by
    ``server.max_error + |drift| * sync_interval``.
    """

    def __init__(
        self,
        time_source: TimeSource,
        server: TimeServer,
        drift: float = 0.0,
        offset: float = 0.0,
        sync_interval: float = 1.0,
    ) -> None:
        super().__init__(time_source)
        if sync_interval <= 0:
            raise ValueError(f"sync_interval must be positive, got {sync_interval}")
        self._clock = DriftingClock(time_source, drift=drift, offset=offset)
        self._server = server
        self.drift = float(drift)
        self.sync_interval = float(sync_interval)
        self._last_sync = self.real_time()
        self.sync_count = 0

    def maybe_sync(self) -> bool:
        """Resynchronize if the interval elapsed; returns True on a sync."""
        now_real = self.real_time()
        if now_real - self._last_sync < self.sync_interval:
            return False
        self._clock.set_to(self._server.read())
        self._last_sync = now_real
        self.sync_count += 1
        return True

    def now(self) -> float:
        self.maybe_sync()
        return self._clock.now()

    @property
    def epsilon_bound(self) -> float:
        half = self._server.max_error + abs(self.drift) * self.sync_interval
        return 2.0 * half


def pairwise_epsilon(clocks: List[PhysicalClock]) -> float:
    """The precision ``epsilon`` of an ensemble: max over clocks of their
    individual ``epsilon_bound`` (each bound already covers a pair)."""
    if not clocks:
        return 0.0
    return max(c.epsilon_bound for c in clocks)


class ManualTime:
    """A trivially controllable time source for tests and doctests.

    >>> t = ManualTime()
    >>> clock = PerfectClock(t)
    >>> t.advance(5.0); clock.now()
    5.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        self._now += dt
        return self._now

    def set(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"cannot move time backwards ({t} < {self._now})")
        self._now = float(t)


def measured_epsilon(
    clocks: List[PhysicalClock],
    sample_times: Optional[List[float]] = None,
) -> float:
    """Empirical pairwise skew of an ensemble at the current instant (or
    maximum over ``sample_times`` if the time source is a ManualTime)."""
    readings = [c.now() for c in clocks]
    if not readings:
        return 0.0
    return max(readings) - min(readings)
