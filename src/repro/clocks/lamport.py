"""Lamport scalar logical clocks.

Lamport clocks [Lamport 78, reference 26 of the paper] assign a single
integer to every event such that ``a -> b`` implies ``L(a) < L(b)``.  The
converse does not hold, so scalar timestamps cannot *detect* concurrency —
two distinct scalar timestamps always compare as ordered.  They are included
both as the simplest member of the logical clock family and as a degenerate
"plausible clock" baseline for the Section 5.4 experiments (a plausible
clock must order causally related events correctly but may order concurrent
events arbitrarily, which is exactly what a Lamport clock does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.base import LogicalClock, LogicalTimestamp, Ordering


@dataclass(frozen=True, order=False)
class ScalarTimestamp(LogicalTimestamp):
    """An integer Lamport timestamp with a site id used only to break ties.

    Ties between distinct sites are declared ``CONCURRENT``: with a scalar
    clock, equal counters at different sites are the only case where we can
    be certain the events are causally unrelated.
    """

    counter: int
    site: int = 0

    def compare(self, other: LogicalTimestamp) -> Ordering:
        if not isinstance(other, ScalarTimestamp):
            raise TypeError(f"cannot compare ScalarTimestamp with {type(other).__name__}")
        if self.counter == other.counter:
            if self.site == other.site:
                return Ordering.EQUAL
            return Ordering.CONCURRENT
        if self.counter < other.counter:
            return Ordering.BEFORE
        return Ordering.AFTER

    def join(self, other: "ScalarTimestamp") -> "ScalarTimestamp":
        return self if self.counter >= other.counter else other

    def meet(self, other: "ScalarTimestamp") -> "ScalarTimestamp":
        return self if self.counter <= other.counter else other


class LamportClock(LogicalClock[ScalarTimestamp]):
    """Classic Lamport clock: ``tick`` increments, ``receive`` takes the max."""

    def __init__(self, site: int) -> None:
        if site < 0:
            raise ValueError(f"site id must be non-negative, got {site}")
        self.site = site
        self._counter = 0

    def now(self) -> ScalarTimestamp:
        return ScalarTimestamp(self._counter, self.site)

    def tick(self) -> ScalarTimestamp:
        self._counter += 1
        return self.now()

    def send(self) -> ScalarTimestamp:
        return self.tick()

    def receive(self, remote: ScalarTimestamp) -> ScalarTimestamp:
        self._counter = max(self._counter, remote.counter) + 1
        return self.now()

    def __repr__(self) -> str:
        return f"LamportClock(site={self.site}, counter={self._counter})"
