"""Base abstractions shared by every clock in :mod:`repro.clocks`.

The paper uses two kinds of clocks:

* *physical* clocks, which produce real numbers (possibly skewed/drifting,
  but re-synchronized so that any two clocks differ by at most ``epsilon``),
  used by Definitions 1-2 and by the TSC/TCC protocols of Section 5; and
* *logical* clocks (Lamport scalar clocks, vector clocks, plausible clocks),
  used by the causally consistent variants and by the logical-clock
  approximation of TCC in Section 5.4.

Logical timestamps are only partially ordered, so comparisons return an
:class:`Ordering` value rather than a boolean.  ``max``/``min`` of two
logical timestamps (needed by the lifetime protocol rules when they are
re-expressed over logical clocks, Section 5.3) are component-wise joins and
meets and are provided by each timestamp class as :meth:`join`/:meth:`meet`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Generic, TypeVar


class Ordering(enum.Enum):
    """Result of comparing two (possibly only partially ordered) timestamps.

    ``BEFORE`` means the left operand happened-before the right one,
    ``AFTER`` the converse, ``EQUAL`` that they are the same timestamp and
    ``CONCURRENT`` that neither dominates the other (only possible for
    logical clocks, or for physical timestamps compared under a clock
    precision ``epsilon`` as in Section 3.2 of the paper).
    """

    BEFORE = "before"
    AFTER = "after"
    EQUAL = "equal"
    CONCURRENT = "concurrent"

    def flipped(self) -> "Ordering":
        """Return the ordering seen from the other operand's point of view."""
        if self is Ordering.BEFORE:
            return Ordering.AFTER
        if self is Ordering.AFTER:
            return Ordering.BEFORE
        return self


def compare_physical(t_a: float, t_b: float, epsilon: float = 0.0) -> Ordering:
    """Compare two physical timestamps under clock precision ``epsilon``.

    Following Section 3.2 (and Stoller's definition the paper borrows),
    ``a`` *definitely occurred before* ``b`` iff ``T(a) + epsilon < T(b)``.
    If neither definitely occurred before the other, the timestamps are
    ``CONCURRENT`` — the imprecision of the clocks does not allow deciding
    which operation occurred earlier.  With ``epsilon == 0`` this degrades
    to the usual total order on the reals (ties are ``EQUAL``).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if t_a == t_b and epsilon == 0.0:
        return Ordering.EQUAL
    if t_a + epsilon < t_b:
        return Ordering.BEFORE
    if t_b + epsilon < t_a:
        return Ordering.AFTER
    if t_a == t_b:
        return Ordering.EQUAL
    return Ordering.CONCURRENT


def definitely_before(t_a: float, t_b: float, epsilon: float = 0.0) -> bool:
    """``True`` iff ``t_a`` definitely occurred before ``t_b`` (Section 3.2)."""
    return compare_physical(t_a, t_b, epsilon) is Ordering.BEFORE


TS = TypeVar("TS", bound="LogicalTimestamp")


class LogicalTimestamp(ABC):
    """A timestamp drawn from some logical clock.

    Concrete subclasses (scalar Lamport timestamps, vector timestamps,
    plausible timestamps) must implement :meth:`compare`, :meth:`join` and
    :meth:`meet`.  Rich comparisons are derived from :meth:`compare`; note
    that for partially ordered timestamps ``not (a < b)`` does **not** imply
    ``a >= b``.
    """

    @abstractmethod
    def compare(self, other: "LogicalTimestamp") -> Ordering:
        """Order this timestamp against ``other``."""

    @abstractmethod
    def join(self: TS, other: TS) -> TS:
        """Least upper bound (the ``max`` of the lifetime protocol rules)."""

    @abstractmethod
    def meet(self: TS, other: TS) -> TS:
        """Greatest lower bound (the ``min`` of the lifetime protocol rules)."""

    # -- derived comparison helpers ------------------------------------

    def happens_before(self, other: "LogicalTimestamp") -> bool:
        return self.compare(other) is Ordering.BEFORE

    def concurrent_with(self, other: "LogicalTimestamp") -> bool:
        return self.compare(other) is Ordering.CONCURRENT

    def __lt__(self, other: "LogicalTimestamp") -> bool:
        return self.compare(other) is Ordering.BEFORE

    def __gt__(self, other: "LogicalTimestamp") -> bool:
        return self.compare(other) is Ordering.AFTER

    def __le__(self, other: "LogicalTimestamp") -> bool:
        return self.compare(other) in (Ordering.BEFORE, Ordering.EQUAL)

    def __ge__(self, other: "LogicalTimestamp") -> bool:
        return self.compare(other) in (Ordering.AFTER, Ordering.EQUAL)


C = TypeVar("C")


class LogicalClock(ABC, Generic[C]):
    """A per-site logical clock that stamps local and message events.

    The interface mirrors the classical presentation: a site *ticks* for a
    local event, *sends* a timestamp along with a message and *receives* a
    timestamp from a message (merging it into local state).  ``now`` reads
    the current timestamp without advancing the clock.
    """

    @abstractmethod
    def now(self) -> C:
        """Current timestamp (no side effects)."""

    @abstractmethod
    def tick(self) -> C:
        """Advance for a local event and return the new timestamp."""

    @abstractmethod
    def send(self) -> C:
        """Advance for a send event and return the timestamp to piggyback."""

    @abstractmethod
    def receive(self, remote: C) -> C:
        """Merge a received timestamp, advance, and return the new timestamp."""
