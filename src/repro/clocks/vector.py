"""Vector clocks (Fidge [15] / Mattern [27]).

A vector timestamp for an N-site system is an N-tuple of event counters.
``t < u`` iff ``t[i] <= u[i]`` for all sites and ``t != u``; incomparable
timestamps are concurrent.  Vector clocks *characterize* causality: the
causal order of the execution is exactly the strict order on its vector
timestamps, which is why Section 5.3 of the paper uses them for the causally
consistent variant of the lifetime protocol.

The component-wise maximum (:meth:`VectorTimestamp.join`) and minimum
(:meth:`VectorTimestamp.meet`) implement the "maximum and minimum of two
logical timestamps" that the adapted protocol rules require (the paper cites
Torres-Rojas & Ahamad's technical report [38] for these operations).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.clocks.base import LogicalClock, LogicalTimestamp, Ordering


class VectorTimestamp(LogicalTimestamp):
    """An immutable N-entry vector timestamp."""

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[int]) -> None:
        object.__setattr__(self, "entries", tuple(int(e) for e in entries))
        if any(e < 0 for e in self.entries):
            raise ValueError(f"vector entries must be non-negative: {self.entries}")

    entries: Tuple[int, ...]

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover - guard
        raise AttributeError("VectorTimestamp is immutable")

    # -- basic container protocol --------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> int:
        return self.entries[index]

    def __iter__(self):
        return iter(self.entries)

    def __hash__(self) -> int:
        return hash(self.entries)

    def __eq__(self, other) -> bool:
        return isinstance(other, VectorTimestamp) and self.entries == other.entries

    def __repr__(self) -> str:
        return f"<{', '.join(str(e) for e in self.entries)}>"

    # -- ordering -------------------------------------------------------

    def _check_width(self, other: "VectorTimestamp") -> None:
        if len(self.entries) != len(other.entries):
            raise ValueError(
                f"vector width mismatch: {len(self.entries)} vs {len(other.entries)}"
            )

    def compare(self, other: LogicalTimestamp) -> Ordering:
        if not isinstance(other, VectorTimestamp):
            raise TypeError(f"cannot compare VectorTimestamp with {type(other).__name__}")
        self._check_width(other)
        le = all(a <= b for a, b in zip(self.entries, other.entries))
        ge = all(a >= b for a, b in zip(self.entries, other.entries))
        if le and ge:
            return Ordering.EQUAL
        if le:
            return Ordering.BEFORE
        if ge:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def join(self, other: "VectorTimestamp") -> "VectorTimestamp":
        self._check_width(other)
        return VectorTimestamp(max(a, b) for a, b in zip(self.entries, other.entries))

    def meet(self, other: "VectorTimestamp") -> "VectorTimestamp":
        self._check_width(other)
        return VectorTimestamp(min(a, b) for a, b in zip(self.entries, other.entries))

    def sum(self) -> int:
        """Total number of events this timestamp is aware of (Section 5.4)."""
        return sum(self.entries)

    @staticmethod
    def zero(width: int) -> "VectorTimestamp":
        """The initial all-zero timestamp for a ``width``-site system."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        return VectorTimestamp((0,) * width)


class VectorClock(LogicalClock[VectorTimestamp]):
    """Per-site vector clock: ``tick`` bumps the local entry, ``receive``
    merges component-wise then bumps the local entry."""

    def __init__(self, site: int, width: int) -> None:
        if not 0 <= site < width:
            raise ValueError(f"site {site} out of range for width {width}")
        self.site = site
        self.width = width
        self._entries = [0] * width

    def now(self) -> VectorTimestamp:
        return VectorTimestamp(self._entries)

    def tick(self) -> VectorTimestamp:
        self._entries[self.site] += 1
        return self.now()

    def send(self) -> VectorTimestamp:
        return self.tick()

    def receive(self, remote: VectorTimestamp) -> VectorTimestamp:
        if len(remote) != self.width:
            raise ValueError(f"vector width mismatch: {len(remote)} vs {self.width}")
        self._entries = [max(a, b) for a, b in zip(self._entries, remote.entries)]
        self._entries[self.site] += 1
        return self.now()

    def merge(self, remote: VectorTimestamp) -> VectorTimestamp:
        """Merge without ticking (used when adopting a fetched object's
        timestamp should not create a new local event)."""
        if len(remote) != self.width:
            raise ValueError(f"vector width mismatch: {len(remote)} vs {self.width}")
        self._entries = [max(a, b) for a, b in zip(self._entries, remote.entries)]
        return self.now()

    def __repr__(self) -> str:
        return f"VectorClock(site={self.site}, now={self.now()!r})"
