"""The xi maps of Section 5.4: logical timestamps -> real numbers.

Definition 5 of the paper: a map ``xi`` from logical timestamps to the reals
such that

* ``t == u``  implies ``xi(t) == xi(u)``, and
* ``t <  u``  implies ``xi(t) <  xi(u)``  (strict monotonicity in the
  happened-before order of the clock).

Informally ``xi(t)`` measures "the amount of global activity of the system
that is known" at ``t``.  Concurrent timestamps may map anywhere, which is
what lets a purely logical system *approximate* timed consistency: a write
at logical time ``t`` must be visible at site ``i`` before
``xi(t_i) - xi(t) > delta`` (Definition 6).

Two concrete maps from the paper, for vector clocks:

* :class:`SumXi` — ``xi(t) = sum(t[i])``: the number of global events known
  at ``t`` (the paper's <35, 4, 0, 72> |-> 111 example).
* :class:`EuclideanXi` — ``xi(t) = sqrt(sum(t[i]^2))``: the length of the
  vector in R^N, the geometric interpretation of Figure 7.

Both extend to any timestamp exposing a ``sum()``/``entries`` view; a
generic :class:`WeightedXi` and the :func:`validate_xi` property checker
(used by the Figure 7 bench and the property tests) are also provided.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Optional, Sequence

from repro.clocks.base import LogicalTimestamp, Ordering
from repro.clocks.vector import VectorTimestamp


class XiMap(ABC):
    """A Definition-5 map from logical timestamps to real numbers."""

    @abstractmethod
    def __call__(self, timestamp: LogicalTimestamp) -> float:
        """Return ``xi(timestamp)``."""

    @property
    def name(self) -> str:
        return type(self).__name__


def _vector_entries(timestamp: LogicalTimestamp) -> Sequence[int]:
    """Extract integer entries from a vector-like timestamp."""
    entries = getattr(timestamp, "entries", None)
    if entries is None:
        levels = getattr(timestamp, "levels", None)
        if levels is None:
            raise TypeError(
                f"{type(timestamp).__name__} does not expose vector entries"
            )
        return levels
    return entries


class SumXi(XiMap):
    """``xi(t) = sum_i t[i]`` — the number of known global events.

    For a vector timestamp this counts every event the timestamp is aware
    of; the paper's example: a site at logical time <35, 4, 0, 72> is aware
    of 111 global events.
    """

    def __call__(self, timestamp: LogicalTimestamp) -> float:
        return float(sum(_vector_entries(timestamp)))


class EuclideanXi(XiMap):
    """``xi(t) = ||t||_2`` — the length of the vector in R^N (Figure 7).

    Strictly monotone in vector-clock dominance: if ``t < u`` component-wise
    with at least one strict entry, the squared length strictly grows.
    The paper's Figure 7 examples: xi(<3,4>) = 5, xi(<3,2>) = 3.61,
    xi(<2,4>) = 4.47.
    """

    def __call__(self, timestamp: LogicalTimestamp) -> float:
        return math.sqrt(sum(e * e for e in _vector_entries(timestamp)))


class WeightedXi(XiMap):
    """``xi(t) = sum_i w_i * t[i]`` with strictly positive weights.

    Strictly positive weights keep Definition 5 satisfied; weights can model
    sites whose events represent different amounts of "global activity"
    (e.g. a site that batches many writes per event).
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w <= 0 for w in weights):
            raise ValueError(f"weights must be strictly positive: {weights}")
        self.weights = tuple(float(w) for w in weights)

    def __call__(self, timestamp: LogicalTimestamp) -> float:
        entries = _vector_entries(timestamp)
        if len(entries) != len(self.weights):
            raise ValueError(
                f"timestamp width {len(entries)} != weights width {len(self.weights)}"
            )
        return sum(w * e for w, e in zip(self.weights, entries))


class PNormXi(XiMap):
    """``xi(t) = ||t||_p`` for ``p >= 1`` — generalizes Sum (p=1) and
    Euclidean (p=2); ``p = inf`` (max entry) is monotone but only weakly, so
    it is rejected here."""

    def __init__(self, p: float) -> None:
        if not (1 <= p < math.inf):
            raise ValueError(f"p must satisfy 1 <= p < inf, got {p}")
        self.p = float(p)

    def __call__(self, timestamp: LogicalTimestamp) -> float:
        entries = _vector_entries(timestamp)
        return sum(abs(e) ** self.p for e in entries) ** (1.0 / self.p)


class FunctionXi(XiMap):
    """Wrap an arbitrary callable as a xi map (validated by the caller)."""

    def __init__(self, fn: Callable[[LogicalTimestamp], float], name: str = "custom"):
        self._fn = fn
        self._name = name

    def __call__(self, timestamp: LogicalTimestamp) -> float:
        return float(self._fn(timestamp))

    @property
    def name(self) -> str:
        return self._name


def validate_xi(
    xi: XiMap,
    timestamps: Iterable[LogicalTimestamp],
) -> Optional[str]:
    """Check Definition 5 on a finite set of timestamps.

    Returns ``None`` when the map satisfies both Definition-5 properties on
    every pair drawn from ``timestamps``, or a human-readable description of
    the first violation found.
    """
    stamps = list(timestamps)
    for t, u in itertools.combinations(stamps, 2):
        order = t.compare(u)
        xt, xu = xi(t), xi(u)
        if order is Ordering.EQUAL and xt != xu:
            return f"xi not well-defined: {t!r} == {u!r} but xi {xt} != {xu}"
        if order is Ordering.BEFORE and not xt < xu:
            return f"xi not monotone: {t!r} < {u!r} but xi {xt} >= {xu}"
        if order is Ordering.AFTER and not xu < xt:
            return f"xi not monotone: {u!r} < {t!r} but xi {xu} >= {xt}"
    return None


def logical_delta_elapsed(
    xi: XiMap,
    write_ts: LogicalTimestamp,
    reader_ts: LogicalTimestamp,
    delta: float,
) -> bool:
    """Definition 6's visibility trigger: has more than ``delta`` units of
    global activity happened (as seen by the reader) since ``write_ts``?

    Timed consistency under logical clocks requires a write at logical time
    ``t`` to be visible at site ``i`` before ``xi(t_i) - xi(t) > delta``.
    """
    return xi(reader_ts) - xi(write_ts) > delta


def figure7_examples() -> dict:
    """The worked xi values of Figure 7, for the bench and the docs."""
    t_34 = VectorTimestamp((3, 4))
    t_32 = VectorTimestamp((3, 2))
    t_24 = VectorTimestamp((2, 4))
    euclid = EuclideanXi()
    return {
        "<3,4>": euclid(t_34),  # 5.0
        "<3,2>": euclid(t_32),  # ~3.61
        "<2,4>": euclid(t_24),  # ~4.47
    }
