"""A monotonic wall-clock source rebased to 0 at first reading.

The live modules (:mod:`repro.sim.aio` and :mod:`repro.net`) measure time
with the event loop's monotonic clock, whose absolute value is arbitrary
(and differs across processes).  Rebasing to 0 at session start keeps
recorded traces small and human-readable, and gives every live module the
*same* convention: deltas and latencies are real seconds since the node
came up.  Cross-process offsets between two rebased clocks are exactly
what :class:`repro.net.clocksync.ClockSyncEstimator` estimates.
"""

from __future__ import annotations

from typing import Callable, Optional


class RebasedClock:
    """``source()`` rebased so that the first reading is 0.

    ``source`` defaults to the running event loop's monotonic time; it is
    resolved lazily so a :class:`RebasedClock` may be constructed before
    any loop exists.  ``offset`` adds a constant skew to every reading —
    the live analogue of :class:`repro.clocks.physical.SkewedClock`, used
    to inject imperfect synchronization into ``repro.net`` experiments.
    """

    def __init__(
        self,
        source: Optional[Callable[[], float]] = None,
        offset: float = 0.0,
    ) -> None:
        self._source = source
        self._t0: Optional[float] = None
        self.offset = float(offset)

    def _read(self) -> float:
        if self._source is None:
            import asyncio

            try:
                self._source = asyncio.get_running_loop().time
            except RuntimeError:
                # No loop running (offline/sim use): fall back to the
                # same monotonic clock the loop would use.
                import time

                self._source = time.monotonic
        return self._source()

    def pin(self) -> None:
        """Fix t0 now (instead of at the first :meth:`now` call)."""
        if self._t0 is None:
            self._t0 = self._read()

    def now(self) -> float:
        """Seconds since the first reading, plus the configured offset."""
        reading = self._read()
        if self._t0 is None:
            self._t0 = reading
        return reading - self._t0 + self.offset

    def __call__(self) -> float:
        return self.now()
