"""Plausible clocks (Torres-Rojas & Ahamad, WDAG '96 — reference [37]).

A *plausible* clock is a constant-size logical clock that is allowed to
order concurrent events (unlike a vector clock, which reports them as
concurrent) but must never invert or hide causal order:

* if ``a`` causally precedes ``b`` then the clock reports ``BEFORE``;
* if the clock reports ``CONCURRENT`` the events really are concurrent.

The error is one-sided: ``BEFORE``/``AFTER`` answers may be wrong only for
events that are actually concurrent.  Section 5.3 of the paper allows the
causal lifetime protocol to take its timestamps "from vector clocks or from
plausible clocks": plausibly ordering two concurrent writes merely makes the
protocol more conservative (more invalidations), never incorrect.

Implemented plausible clocks, following the WDAG '96 constructions:

* :class:`REVClock` — *R-Entries Vector*: site ``i`` owns entry ``i mod R``
  of an R-entry vector, so the timestamp size is constant in the number of
  sites.  With ``R >= number of sites`` it degenerates to an exact vector
  clock.
* :class:`KLamportClock` — *k-Lamport*: the local Lamport counter plus the
  last ``k - 1`` counters observed from other sites, compared
  lexicographically with vector-like dominance.
* :class:`CombClock` — the *Comb* combination of several plausible clocks:
  it reports ``CONCURRENT`` as soon as any component does, so its accuracy
  dominates each component's.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.clocks.base import LogicalClock, LogicalTimestamp, Ordering


class REVTimestamp(LogicalTimestamp):
    """Timestamp of an R-entries vector clock: (owner entry index, entries)."""

    __slots__ = ("slot", "entries")

    def __init__(self, slot: int, entries: Sequence[int]) -> None:
        object.__setattr__(self, "slot", int(slot))
        object.__setattr__(self, "entries", tuple(int(e) for e in entries))
        if not 0 <= self.slot < len(self.entries):
            raise ValueError(f"slot {slot} out of range for {len(self.entries)} entries")

    slot: int
    entries: Tuple[int, ...]

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("REVTimestamp is immutable")

    def __hash__(self) -> int:
        return hash((self.slot, self.entries))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, REVTimestamp)
            and self.slot == other.slot
            and self.entries == other.entries
        )

    def __repr__(self) -> str:
        return f"REV(slot={self.slot}, <{', '.join(map(str, self.entries))}>)"

    def compare(self, other: LogicalTimestamp) -> Ordering:
        if not isinstance(other, REVTimestamp):
            raise TypeError(f"cannot compare REVTimestamp with {type(other).__name__}")
        if len(self.entries) != len(other.entries):
            raise ValueError("REV width mismatch")
        if self.entries == other.entries and self.slot == other.slot:
            return Ordering.EQUAL
        # The WDAG'96 REV test: t < u iff t[slot_t] <= u[slot_t] and t <= u
        # component-wise ... but with entry folding the sound test is the
        # vector dominance test on the folded entries, with the owner entry
        # strict when slots collide.
        le = all(a <= b for a, b in zip(self.entries, other.entries))
        ge = all(a >= b for a, b in zip(self.entries, other.entries))
        if le and ge:
            # Same folded entries but different owner slot: plausibly order
            # by slot to stay deterministic (the events are concurrent).
            return Ordering.BEFORE if self.slot < other.slot else Ordering.AFTER
        if le:
            return Ordering.BEFORE
        if ge:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def join(self, other: "REVTimestamp") -> "REVTimestamp":
        if len(self.entries) != len(other.entries):
            raise ValueError("REV width mismatch")
        merged = tuple(max(a, b) for a, b in zip(self.entries, other.entries))
        # The join keeps the slot of the dominant operand when one dominates;
        # otherwise the slot is immaterial for ordering soundness.
        slot = other.slot if other.compare(self) is Ordering.AFTER else self.slot
        return REVTimestamp(slot, merged)

    def meet(self, other: "REVTimestamp") -> "REVTimestamp":
        if len(self.entries) != len(other.entries):
            raise ValueError("REV width mismatch")
        merged = tuple(min(a, b) for a, b in zip(self.entries, other.entries))
        slot = other.slot if other.compare(self) is Ordering.BEFORE else self.slot
        return REVTimestamp(slot, merged)

    def sum(self) -> int:
        """Total activity this timestamp is aware of (for the xi maps)."""
        return sum(self.entries)


class REVClock(LogicalClock[REVTimestamp]):
    """R-entries vector clock: constant-size plausible clock.

    Site ``i`` ticks entry ``i mod r``.  When two different sites share an
    entry, one site's events inflate the other's entry, which can only make
    the clock report *more* order than really exists — the plausibility
    guarantee (causal order is never inverted) is preserved because a
    message's timestamp is joined into the receiver before the receiver's
    next event.
    """

    def __init__(self, site: int, r: int) -> None:
        if site < 0:
            raise ValueError(f"site id must be non-negative, got {site}")
        if r <= 0:
            raise ValueError(f"r must be positive, got {r}")
        self.site = site
        self.r = r
        self.slot = site % r
        self._entries = [0] * r

    def now(self) -> REVTimestamp:
        return REVTimestamp(self.slot, self._entries)

    def tick(self) -> REVTimestamp:
        self._entries[self.slot] += 1
        return self.now()

    def send(self) -> REVTimestamp:
        return self.tick()

    def receive(self, remote: REVTimestamp) -> REVTimestamp:
        if len(remote.entries) != self.r:
            raise ValueError("REV width mismatch")
        self._entries = [max(a, b) for a, b in zip(self._entries, remote.entries)]
        self._entries[self.slot] += 1
        return self.now()

    def merge(self, remote: REVTimestamp) -> REVTimestamp:
        """Merge without ticking (adopting a fetched object's timestamp
        should not create a new local event) — mirrors VectorClock.merge."""
        if len(remote.entries) != self.r:
            raise ValueError("REV width mismatch")
        self._entries = [max(a, b) for a, b in zip(self._entries, remote.entries)]
        return self.now()

    @staticmethod
    def zero(site: int, r: int) -> REVTimestamp:
        """The initial timestamp a site at slot ``site % r`` starts from."""
        return REVTimestamp(site % r, (0,) * r)

    def __repr__(self) -> str:
        return f"REVClock(site={self.site}, r={self.r}, now={self.now()!r})"


class KLamportTimestamp(LogicalTimestamp):
    """Timestamp of the k-Lamport plausible clock.

    ``levels[0]`` is the site's own Lamport counter; ``levels[j]`` for
    ``j > 0`` is the largest ``levels[j-1]`` value ever observed from any
    other site.  Dominance of every level is the plausible order test.
    """

    __slots__ = ("site", "levels")

    def __init__(self, site: int, levels: Sequence[int]) -> None:
        object.__setattr__(self, "site", int(site))
        object.__setattr__(self, "levels", tuple(int(x) for x in levels))
        if not self.levels:
            raise ValueError("k-Lamport timestamp needs at least one level")

    site: int
    levels: Tuple[int, ...]

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("KLamportTimestamp is immutable")

    def __hash__(self) -> int:
        return hash((self.site, self.levels))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, KLamportTimestamp)
            and self.site == other.site
            and self.levels == other.levels
        )

    def __repr__(self) -> str:
        return f"KLamport(site={self.site}, levels={self.levels})"

    def compare(self, other: LogicalTimestamp) -> Ordering:
        if not isinstance(other, KLamportTimestamp):
            raise TypeError(
                f"cannot compare KLamportTimestamp with {type(other).__name__}"
            )
        if len(self.levels) != len(other.levels):
            raise ValueError("k-Lamport depth mismatch")
        if self.site == other.site and self.levels == other.levels:
            return Ordering.EQUAL
        if self.site == other.site:
            # Same site: the local counter totally orders events.
            if self.levels[0] < other.levels[0]:
                return Ordering.BEFORE
            if self.levels[0] > other.levels[0]:
                return Ordering.AFTER
            return Ordering.EQUAL
        # Cross-site: the head counter is a Lamport clock, so a -> b implies
        # head(a) < head(b); ordering by head never inverts causal order.
        # Equal heads at different sites are therefore provably concurrent.
        if self.levels[0] == other.levels[0]:
            return Ordering.CONCURRENT
        if self.levels[0] < other.levels[0]:
            # Refinement: if self -> other then self's counter must have
            # propagated into other's observed level, so a smaller observed
            # level proves concurrency.
            if len(other.levels) > 1 and other.levels[1] < self.levels[0]:
                return Ordering.CONCURRENT
            return Ordering.BEFORE
        if len(self.levels) > 1 and self.levels[1] < other.levels[0]:
            return Ordering.CONCURRENT
        return Ordering.AFTER

    def join(self, other: "KLamportTimestamp") -> "KLamportTimestamp":
        if len(self.levels) != len(other.levels):
            raise ValueError("k-Lamport depth mismatch")
        cmp = self.compare(other)
        if cmp is Ordering.AFTER or cmp is Ordering.EQUAL:
            return self
        if cmp is Ordering.BEFORE:
            return other
        levels = tuple(max(a, b) for a, b in zip(self.levels, other.levels))
        return KLamportTimestamp(self.site, levels)

    def meet(self, other: "KLamportTimestamp") -> "KLamportTimestamp":
        if len(self.levels) != len(other.levels):
            raise ValueError("k-Lamport depth mismatch")
        cmp = self.compare(other)
        if cmp is Ordering.BEFORE or cmp is Ordering.EQUAL:
            return self
        if cmp is Ordering.AFTER:
            return other
        levels = tuple(min(a, b) for a, b in zip(self.levels, other.levels))
        return KLamportTimestamp(self.site, levels)

    def sum(self) -> int:
        return sum(self.levels)


class KLamportClock(LogicalClock[KLamportTimestamp]):
    """k-Lamport plausible clock of depth ``k``."""

    def __init__(self, site: int, k: int = 2) -> None:
        if site < 0:
            raise ValueError(f"site id must be non-negative, got {site}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.site = site
        self.k = k
        self._levels = [0] * k

    def now(self) -> KLamportTimestamp:
        return KLamportTimestamp(self.site, self._levels)

    def tick(self) -> KLamportTimestamp:
        self._levels[0] += 1
        return self.now()

    def send(self) -> KLamportTimestamp:
        return self.tick()

    def receive(self, remote: KLamportTimestamp) -> KLamportTimestamp:
        if len(remote.levels) != self.k:
            raise ValueError("k-Lamport depth mismatch")
        # Shift the remote's view down one level and merge.
        for level in range(self.k - 1, 0, -1):
            self._levels[level] = max(self._levels[level], remote.levels[level - 1])
        self._levels[0] = max(self._levels[0], remote.levels[0]) + 1
        return self.now()

    def __repr__(self) -> str:
        return f"KLamportClock(site={self.site}, k={self.k}, now={self.now()!r})"


class CombTimestamp(LogicalTimestamp):
    """Product timestamp of the Comb plausible-clock combinator."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[LogicalTimestamp]) -> None:
        object.__setattr__(self, "parts", tuple(parts))
        if not self.parts:
            raise ValueError("Comb timestamp needs at least one component")

    parts: Tuple[LogicalTimestamp, ...]

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("CombTimestamp is immutable")

    def __hash__(self) -> int:
        return hash(self.parts)

    def __eq__(self, other) -> bool:
        return isinstance(other, CombTimestamp) and self.parts == other.parts

    def __repr__(self) -> str:
        return f"Comb({', '.join(repr(p) for p in self.parts)})"

    def compare(self, other: LogicalTimestamp) -> Ordering:
        if not isinstance(other, CombTimestamp):
            raise TypeError(f"cannot compare CombTimestamp with {type(other).__name__}")
        if len(self.parts) != len(other.parts):
            raise ValueError("Comb arity mismatch")
        verdicts = {a.compare(b) for a, b in zip(self.parts, other.parts)}
        if verdicts == {Ordering.EQUAL}:
            return Ordering.EQUAL
        if Ordering.CONCURRENT in verdicts:
            return Ordering.CONCURRENT
        # Components disagree on direction => the events must be concurrent
        # (a genuine causal order would be reported unanimously).
        if Ordering.BEFORE in verdicts and Ordering.AFTER in verdicts:
            return Ordering.CONCURRENT
        if Ordering.BEFORE in verdicts:
            return Ordering.BEFORE
        return Ordering.AFTER

    def join(self, other: "CombTimestamp") -> "CombTimestamp":
        if len(self.parts) != len(other.parts):
            raise ValueError("Comb arity mismatch")
        return CombTimestamp([a.join(b) for a, b in zip(self.parts, other.parts)])

    def meet(self, other: "CombTimestamp") -> "CombTimestamp":
        if len(self.parts) != len(other.parts):
            raise ValueError("Comb arity mismatch")
        return CombTimestamp([a.meet(b) for a, b in zip(self.parts, other.parts)])

    def sum(self) -> int:
        total = 0
        for part in self.parts:
            part_sum = getattr(part, "sum", None)
            if callable(part_sum):
                total += part_sum()
        return total


class CombClock(LogicalClock[CombTimestamp]):
    """Run several plausible clocks in parallel and intersect their orders."""

    def __init__(self, components: Sequence[LogicalClock]) -> None:
        if not components:
            raise ValueError("Comb clock needs at least one component")
        self.components: List[LogicalClock] = list(components)

    def now(self) -> CombTimestamp:
        return CombTimestamp([c.now() for c in self.components])

    def tick(self) -> CombTimestamp:
        return CombTimestamp([c.tick() for c in self.components])

    def send(self) -> CombTimestamp:
        return CombTimestamp([c.send() for c in self.components])

    def receive(self, remote: CombTimestamp) -> CombTimestamp:
        if len(remote.parts) != len(self.components):
            raise ValueError("Comb arity mismatch")
        return CombTimestamp(
            [c.receive(part) for c, part in zip(self.components, remote.parts)]
        )

    def __repr__(self) -> str:
        return f"CombClock({', '.join(repr(c) for c in self.components)})"
