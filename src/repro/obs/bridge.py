"""Pull-model bridges: export the existing stat structs into a registry.

Every layer of the repo already keeps counters in plain structs —
:class:`~repro.protocol.stats.ClientStats` in the cache clients,
:class:`~repro.checkers.search.SearchStats` in the serialization-search
engine, :class:`~repro.ring.placement.PlacementStats` and
:class:`~repro.net.ring_router.RouterStats` in the ring stack, ad-hoc
ints in the servers and the sim kernel.  Rewriting those hot paths to
push into metric children would tax the sim's tight loops for nothing;
instead each ``bind_*`` function registers a *collector* that reads the
struct only at scrape/snapshot time.  The struct keeps native ``int``
arithmetic (the ≤5 % overhead budget of ISSUE 4 is met by construction)
and the registry stays the single export surface.

Every binder returns the collector so callers can
:meth:`~repro.obs.metrics.Registry.unregister_collector` it when the
bound object's run ends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import Registry, family

Labels = Dict[str, str]


def _with(labels: Optional[Mapping[str, Any]], **extra: Any) -> Labels:
    out = {k: str(v) for k, v in (labels or {}).items()}
    out.update({k: str(v) for k, v in extra.items()})
    return out


def bind_client_stats(
    registry: Registry, stats: Any, **labels: Any
) -> Callable:
    """Export a :class:`~repro.protocol.stats.ClientStats` (anything with
    its ``collect_families`` bridge) under the given constant labels —
    typically ``site=<client id>`` and a ``stack`` discriminator."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        return stats.collect_families(base)

    return registry.register_collector(collector)


def bind_search_stats(
    registry: Registry, stats: Any, **labels: Any
) -> Callable:
    """Export a checker :class:`~repro.checkers.search.SearchStats`:
    states, memo hits, per-reason prunes, frontier depth, wall time."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        prunes = [
            (_with(base, reason=reason), count)
            for reason, count in sorted(stats.prunes.items())
        ]
        return [
            family("repro_checker_states_total", "counter",
                   "Serialization-search states expanded",
                   [(base, stats.states)]),
            family("repro_checker_memo_hits_total", "counter",
                   "States skipped via the failure memo",
                   [(base, stats.memo_hits)]),
            family("repro_checker_prunes_total", "counter",
                   "Search prunes by reason", prunes),
            family("repro_checker_frontier_depth", "gauge",
                   "Deepest partial serialization reached",
                   [(base, stats.max_frontier_depth)]),
            family("repro_checker_wall_seconds_total", "counter",
                   "Seconds spent inside the search engine",
                   [(base, stats.wall_time)]),
            family("repro_checker_budget", "gauge",
                   "Configured search state budget",
                   [(base, stats.budget)]),
        ]

    return registry.register_collector(collector)


def bind_placement_stats(
    registry: Registry, stats: Any, **labels: Any
) -> Callable:
    """Export a :class:`~repro.ring.placement.PlacementStats`: repairs
    queued/done/late, quorum failures, fallback reads, replica acks."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        fields = stats.as_dict()
        return [
            family("repro_ring_placement_ops_total", "counter",
                   "Placement-level operations by kind",
                   [(_with(base, kind="write"), fields["writes"]),
                    (_with(base, kind="read"), fields["reads"])]),
            family("repro_ring_fallback_reads_total", "counter",
                   "Reads served by a non-primary replica",
                   [(base, fields["fallback_reads"])]),
            family("repro_ring_replica_acks_total", "counter",
                   "Replica (non-primary) write acknowledgements",
                   [(base, fields["replica_acks"])]),
            family("repro_ring_quorum_failures_total", "counter",
                   "Writes that finished below the W quorum",
                   [(base, fields["quorum_failures"])]),
            family("repro_ring_repairs_total", "counter",
                   "Anti-entropy repairs by outcome",
                   [(_with(base, outcome="queued"), fields["repairs_queued"]),
                    (_with(base, outcome="done"), fields["repairs_done"]),
                    (_with(base, outcome="late"), fields["repairs_late"])]),
        ]

    return registry.register_collector(collector)


def bind_router_stats(
    registry: Registry, stats: Any, **labels: Any
) -> Callable:
    """Export a :class:`~repro.net.ring_router.RouterStats`: per-device
    (per-shard) read/write counts plus the off-ring guard counter."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        reads = [
            (_with(base, device=dev), count)
            for dev, count in sorted(stats.reads_by_device.items())
        ]
        writes = [
            (_with(base, device=dev), count)
            for dev, count in sorted(stats.writes_by_device.items())
        ]
        return [
            family("repro_ring_reads_total", "counter",
                   "Ring-routed reads by serving device", reads),
            family("repro_ring_writes_total", "counter",
                   "Ring-routed writes by device (primary fan-out)", writes),
            family("repro_ring_router_ops_total", "counter",
                   "Router-level operations by kind",
                   [(_with(base, kind="read"), stats.reads),
                    (_with(base, kind="write"), stats.writes)]),
            family("repro_ring_off_ring_reads_total", "counter",
                   "Reads served by a device outside the replica set "
                   "(routing bug guard; must stay 0)",
                   [(base, stats.off_ring_reads)]),
            family("repro_ring_anti_entropy_errors_total", "counter",
                   "Anti-entropy loop deaths from non-cancellation errors",
                   [(base, stats.anti_entropy_errors)]),
        ]

    return registry.register_collector(collector)


def bind_simulator(
    registry: Registry, sim: Any, **labels: Any
) -> Callable:
    """Export a :class:`~repro.sim.kernel.Simulator`'s kernel gauges:
    events processed, pending queue depth, simulated now."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        return [
            family("repro_sim_events_total", "counter",
                   "Events processed by the simulation kernel",
                   [(base, sim.events_processed)]),
            family("repro_sim_pending_events", "gauge",
                   "Scheduled-but-unprocessed kernel events",
                   [(base, sim.pending)]),
            family("repro_sim_now_seconds", "gauge",
                   "Current simulated time",
                   [(base, sim.now)]),
        ]

    return registry.register_collector(collector)


def bind_sim_server(
    registry: Registry, server: Any, **labels: Any
) -> Callable:
    """Export a sim-side authoritative server
    (:class:`~repro.protocol.server.PhysicalServer` /
    :class:`~repro.protocol.server.CausalServer`): installs, discards,
    store size, subscribers."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        return [
            family("repro_server_writes_total", "counter",
                   "Write installs by outcome",
                   [(_with(base, outcome="installed"), server.writes_installed),
                    (_with(base, outcome="discarded"), server.writes_discarded)]),
            family("repro_server_objects", "gauge",
                   "Objects materialized in the store",
                   [(base, len(server.store))]),
            family("repro_server_subscribers", "gauge",
                   "Clients subscribed for push propagation",
                   [(base, len(server.subscribers))]),
        ]

    return registry.register_collector(collector)


def bind_net_server(
    registry: Registry, server: Any, **labels: Any
) -> Callable:
    """Export a :class:`~repro.net.server.NetObjectServer`: requests by
    kind, propagation fan-out, connection/frame/byte accounting,
    in-flight depth, and the draining flag (labels typically
    ``device=<id>`` in a ring, or ``role=server`` standalone)."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        requests = [
            (_with(base, kind=kind), count)
            for kind, count in sorted(server.requests_by_kind.items())
        ]
        transport = server.transport_totals()
        return [
            family("repro_net_requests_total", "counter",
                   "Frames dispatched by the object server, by kind",
                   requests),
            family("repro_net_propagation_sent_total", "counter",
                   "Server-initiated propagation frames by kind",
                   [(_with(base, kind="push"), server.pushes_sent),
                    (_with(base, kind="invalidate"),
                     server.invalidations_sent)]),
            family("repro_net_connections_accepted_total", "counter",
                   "TCP connections accepted since start",
                   [(base, server.connections_accepted)]),
            family("repro_net_connections_active", "gauge",
                   "Currently open client connections",
                   [(base, len(server._connections))]),
            family("repro_net_subscribers", "gauge",
                   "Connections subscribed for push propagation",
                   [(base, len(server._subscribers))]),
            family("repro_net_frames_total", "counter",
                   "Frames moved over server connections, by direction",
                   [(_with(base, direction=d), v)
                    for d, v in sorted(transport["frames"].items())]),
            family("repro_net_bytes_total", "counter",
                   "Bytes moved over server connections, by direction",
                   [(_with(base, direction=d), v)
                    for d, v in sorted(transport["bytes"].items())]),
            family("repro_net_inflight_requests", "gauge",
                   "Requests currently being served",
                   [(base, server._inflight)]),
            family("repro_net_dedup_replays_total", "counter",
                   "Retransmitted requests answered from the reply cache "
                   "(executed exactly once)",
                   [(base, server.dedup_replays)]),
            family("repro_net_busy_sent_total", "counter",
                   "Requests shed unexecuted with a busy frame "
                   "(inflight_limit backpressure)",
                   [(base, server.busy_sent)]),
            family("repro_net_reply_cache_entries", "gauge",
                   "Replies retained for exactly-once replay",
                   [(base, len(server.replies))]),
            family("repro_net_batched_writes_total", "counter",
                   "Writes installed via write-batch frames",
                   [(base, server.batched_writes)]),
            family("repro_net_objects", "gauge",
                   "Objects materialized in the server store",
                   [(base, len(server.store))]),
            family("repro_net_draining", "gauge",
                   "1 while a graceful shutdown drain is in progress",
                   [(base, 1 if server.draining else 0)]),
        ]

    return registry.register_collector(collector)


def bind_monitor_stats(
    registry: Registry, stats: Any, **labels: Any
) -> Callable:
    """Export an online-monitor
    :class:`~repro.checkers.online.MonitorStats` (reads/writes/late
    reads and the running threshold)."""
    base = _with(labels)

    def collector() -> Iterable[Dict[str, Any]]:
        late = [
            (_with(base, obj=obj), count)
            for obj, count in sorted(stats.late_by_object.items())
        ]
        return [
            family("repro_monitor_ops_total", "counter",
                   "Operations seen by the online monitor",
                   [(_with(base, kind="read"), stats.reads),
                    (_with(base, kind="write"), stats.writes)]),
            family("repro_monitor_late_reads_total", "counter",
                   "Reads the online monitor flagged late",
                   [(base, stats.late_reads)]),
            family("repro_monitor_late_reads_by_object_total", "counter",
                   "Late reads split by object", late),
            family("repro_monitor_threshold_seconds", "gauge",
                   "Running timedness threshold of the observed stream",
                   [(base, stats.threshold)]),
        ]

    return registry.register_collector(collector)
