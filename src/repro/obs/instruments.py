"""Timed-consistency instruments on top of the metrics core.

The paper's Section 6 evaluates the lifetime protocol by the fraction of
operations that execute *on time*; the offline checkers establish that
number after the fact.  These instruments compute the same quantities
online, with bounded memory, so a live stack (TCP servers, ring routers,
the sim's async twin) can export them from ``/metrics`` continuously:

* :class:`VisibilityLag` — the observed age of served/propagated
  versions (``now - T(w)``), as a histogram against the freshness bound
  ``delta``, with a violation counter;
* :class:`OnTimeRatio` — the Definition 1/2 on-time read fraction,
  judged per read from a bounded per-object window of recent writes
  (the online sibling of
  :class:`repro.checkers.online.OnlineTimedMonitor`, trading unbounded
  write memory for an explicit *unjudged* bucket — see
  docs/OBSERVABILITY.md for the window-tolerance semantics);
* :class:`EventTrace` — a ring buffer of structured operation events
  with JSONL export in the docs/TRACE_FORMAT.md operation shape, so the
  tail of a live run can always be handed to the offline checkers;
* :class:`TimedInstruments` — the bundle the net stack wires in: one
  call per completed read/write feeds all three.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.obs.metrics import Registry, exponential_buckets

#: Default per-object recent-write window of :class:`OnTimeRatio`.
DEFAULT_WINDOW = 64

#: Default capacity of :class:`EventTrace`.
DEFAULT_TRACE_CAPACITY = 4096


class OnTimeVerdict(NamedTuple):
    """One read's online judgement.

    ``on_time`` is ``True``/``False`` when the window sufficed to decide
    the Definition 1/2 condition, ``None`` when the writer fell out of
    the window and no retained write settles it (*unjudged*).  ``lag`` is
    ``t_read - T(writer)`` (``None`` when the writer is unknown);
    ``required_delta`` is the smallest delta that would have made the
    read on time, given what the window retained.
    """

    on_time: Optional[bool]
    lag: Optional[float]
    required_delta: float


class VisibilityLag:
    """Observed version age vs the freshness bound.

    ``observe(lag)`` records how old the observed version was at the
    moment of observation.  What counts as a *violation* depends on the
    call site: for propagation events (a push arriving at a cache) an
    age beyond ``delta + epsilon`` is by itself a missed bound, which is
    the default; for reads, an old version is only a violation when a
    newer write existed outside the bound — the caller then passes the
    :class:`OnTimeRatio` judgement as ``violated`` explicitly.
    """

    def __init__(
        self,
        registry: Registry,
        delta: float,
        epsilon: float = 0.0,
        *,
        name: str = "repro_visibility_lag_seconds",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.delta = delta
        self.epsilon = epsilon
        self.histogram = registry.histogram(
            name,
            "Age of the observed version at observation time (seconds)",
            buckets=buckets if buckets is not None else exponential_buckets(),
        )
        self.violations = registry.counter(
            "repro_visibility_violations_total",
            "Observations that missed the delta freshness bound",
        )
        registry.gauge(
            "repro_visibility_delta_seconds",
            "The freshness bound delta these instruments run at",
        ).set_function(lambda: self.delta)
        registry.gauge(
            "repro_visibility_epsilon_seconds",
            "The clock precision epsilon discounted by the judgements",
        ).set_function(lambda: self.epsilon)

    def observe(self, lag: float, violated: Optional[bool] = None) -> None:
        lag = max(lag, 0.0)
        self.histogram.observe(lag)
        if violated is None:
            violated = (
                not math.isinf(self.delta)
                and lag > self.delta + self.epsilon
            )
        if violated:
            self.violations.inc()


class _ObjectWindow:
    """The recent writes to one object, in effective-time order."""

    __slots__ = ("writes", "evicted")

    def __init__(self, capacity: int) -> None:
        self.writes: Deque[Tuple[float, Any]] = deque(maxlen=capacity)
        self.evicted = 0

    def add(self, time: float, value: Any) -> None:
        if len(self.writes) == self.writes.maxlen:
            self.evicted += 1
        if not self.writes or time >= self.writes[-1][0]:
            self.writes.append((time, value))
            return
        # Slightly out-of-order arrival (completion order across sites):
        # keep the window sorted with a short right-to-left walk.
        items = list(self.writes)
        at = len(items)
        while at > 0 and items[at - 1][0] > time:
            at -= 1
        items.insert(at, (time, value))
        self.writes.clear()
        self.writes.extend(items[-self.writes.maxlen:])


class OnTimeRatio:
    """Online Definition 1/2 on-time read fraction, bounded memory.

    A read of value ``v`` (written by ``w`` at ``T(w)``) is **late** iff
    some other write ``w'`` to the same object satisfies::

        T(w') > T(w) + epsilon   and   T(w') < T(r) - delta - epsilon

    (Definition 2's comparison; ``epsilon = 0`` gives Definition 1).
    The offline monitor keeps every write; this instrument keeps the
    last ``window`` writes per object.  When the writer is still in the
    window the judgement is *exact*.  When it is not, a retained write
    older than ``T(r) - delta - epsilon`` still proves the read late
    (every retained write is newer than the evicted writer); otherwise
    the read is counted **unjudged** — the documented window tolerance
    (a healthy run whose objects see fewer than ``window`` writes per
    delta interval never produces unjudged reads).
    """

    def __init__(
        self,
        registry: Registry,
        delta: float,
        epsilon: float = 0.0,
        *,
        window: int = DEFAULT_WINDOW,
        initial_value: Any = 0,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.delta = delta
        self.epsilon = epsilon
        self.window = window
        self.initial_value = initial_value
        self._objects: Dict[str, _ObjectWindow] = {}
        reads = registry.counter(
            "repro_ontime_reads_total",
            "Reads by online Definition 1/2 verdict",
            labels=("verdict",),
        )
        self._on_time = reads.labels(verdict="on_time")
        self._late = reads.labels(verdict="late")
        self._unjudged = reads.labels(verdict="unjudged")
        self._writes = registry.counter(
            "repro_ontime_writes_total",
            "Writes observed by the on-time instrument",
        )
        registry.gauge(
            "repro_ontime_ratio",
            "On-time fraction of judged reads (Definition 1/2, online)",
        ).set_function(lambda: self.ratio)
        registry.gauge(
            "repro_ontime_required_delta_seconds",
            "Running timedness threshold: the delta the stream needed so far",
        ).set_function(lambda: self.required_delta)
        self.required_delta = 0.0

    # -- feeding ---------------------------------------------------------

    def observe_write(self, obj: str, value: Any, time: float) -> None:
        window = self._objects.get(obj)
        if window is None:
            window = self._objects[obj] = _ObjectWindow(self.window)
        window.add(time, value)
        self._writes.inc()

    def observe_read(self, obj: str, value: Any, time: float) -> OnTimeVerdict:
        window = self._objects.get(obj)
        writes = window.writes if window is not None else ()
        cutoff = time - self.delta - self.epsilon
        writer_at = None
        for index in range(len(writes) - 1, -1, -1):
            if writes[index][1] == value:
                writer_at = index
                break
        if writer_at is not None:
            writer_time = writes[writer_at][0]
            verdict = self._judge(writes, writer_at, writer_time, time, cutoff)
        elif value == self.initial_value and (window is None or window.evicted == 0):
            # Reading the pre-history value: every retained write is a
            # candidate newer write.
            verdict = self._judge(writes, -1, -math.inf, time, cutoff)
        else:
            # The writer predates the window.  A retained write older
            # than the cutoff still proves lateness; otherwise the
            # window cannot decide.
            if writes and writes[0][0] < cutoff:
                verdict = OnTimeVerdict(False, None, time - writes[0][0] - self.epsilon)
            else:
                verdict = OnTimeVerdict(None, None, 0.0)
        if verdict.on_time is True:
            self._on_time.inc()
        elif verdict.on_time is False:
            self._late.inc()
        else:
            self._unjudged.inc()
        self.required_delta = max(self.required_delta, verdict.required_delta)
        return verdict

    def _judge(
        self,
        writes,
        writer_at: int,
        writer_time: float,
        time: float,
        cutoff: float,
    ) -> OnTimeVerdict:
        lag = None if math.isinf(writer_time) else time - writer_time
        late = False
        required = 0.0
        for index in range(writer_at + 1, len(writes)):
            w_time = writes[index][0]
            if w_time <= writer_time + self.epsilon:
                continue  # within the clock precision of the writer
            required = max(required, time - w_time - self.epsilon)
            if w_time < cutoff:
                late = True
        return OnTimeVerdict(not late, lag, max(required, 0.0))

    # -- summary ---------------------------------------------------------

    @property
    def counts(self) -> Dict[str, int]:
        return {
            "on_time": int(self._on_time.value),
            "late": int(self._late.value),
            "unjudged": int(self._unjudged.value),
            "writes": int(self._writes.value),
        }

    @property
    def judged(self) -> int:
        return int(self._on_time.value + self._late.value)

    @property
    def ratio(self) -> float:
        """On-time fraction of *judged* reads (1.0 when nothing judged:
        an empty stream has violated nothing)."""
        judged = self.judged
        if judged == 0:
            return 1.0
        return self._on_time.value / judged


class EventTrace:
    """A bounded ring of structured operation events.

    Events carry the docs/TRACE_FORMAT.md operation fields (``kind``,
    ``site``, ``obj``, ``value``, ``time``, optional ``start``/``end``),
    so the retained tail of a live run can be exported as JSONL or as a
    checkable history payload at any moment.  ``dropped`` counts events
    the ring has forgotten.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        *,
        registry: Optional[Registry] = None,
        initial_value: Any = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.initial_value = initial_value
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        if registry is not None:
            registry.gauge(
                "repro_trace_events",
                "Operation events currently retained by the trace ring",
            ).set_function(lambda: len(self._events))
            self._dropped_counter = registry.counter(
                "repro_trace_dropped_total",
                "Operation events evicted from the trace ring",
            )
            self._dropped_counter.labels()  # materialize the zero sample
        else:
            self._dropped_counter = None

    def record(
        self,
        kind: str,
        site: int,
        obj: str,
        value: Any,
        time: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **extra: Any,
    ) -> None:
        if kind not in ("r", "w"):
            raise ValueError(f"kind must be 'r' or 'w', got {kind!r}")
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
            if self._dropped_counter is not None:
                self._dropped_counter.inc()
        event: Dict[str, Any] = {
            "kind": kind, "site": site, "obj": obj, "value": value,
            "time": time,
        }
        if start is not None:
            event["start"] = start
        if end is not None:
            event["end"] = end
        event.update(extra)
        self._events.append(event)

    def record_read(self, site: int, obj: str, value: Any, time: float,
                    **kw: Any) -> None:
        self.record("r", site, obj, value, time, **kw)

    def record_write(self, site: int, obj: str, value: Any, time: float,
                     **kw: Any) -> None:
        self.record("w", site, obj, value, time, **kw)

    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def export_jsonl(self, path: str) -> int:
        """One operation object per line; returns the number written."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")
        return len(events)

    def to_history_payload(self) -> Dict[str, Any]:
        """The docs/TRACE_FORMAT.md top-level payload for the retained
        tail (operations sorted by effective time)."""
        return {
            "initial_value": self.initial_value,
            "operations": sorted(self.events(), key=lambda e: e["time"]),
        }


class StoreInstruments:
    """WAL / snapshot / recovery metrics for one :mod:`repro.store`
    durable store.

    Families carry a ``store`` label so several stores (one per ring
    device, say) can share a registry.  The histogram is fed by the
    WAL's ``on_fsync`` duration hook; the snapshot-age gauge is pulled
    at scrape time from the store itself (:meth:`bind_snapshot_age`).
    """

    def __init__(self, registry: Registry, store: Any = "server") -> None:
        self.registry = registry
        label = {"store": str(store)}
        self.fsync_seconds = registry.histogram(
            "repro_store_fsync_seconds",
            "Duration of WAL fsync calls (seconds)",
            labels=("store",),
            buckets=exponential_buckets(start=0.00001, count=16),
        ).labels(**label)
        self.wal_records = registry.counter(
            "repro_store_wal_records_total",
            "Records appended to the write-ahead log",
            labels=("store",),
        ).labels(**label)
        self.wal_bytes = registry.counter(
            "repro_store_wal_bytes_total",
            "Bytes appended to the write-ahead log",
            labels=("store",),
        ).labels(**label)
        self.snapshots = registry.counter(
            "repro_store_snapshots_total",
            "Compacted snapshots written",
            labels=("store",),
        ).labels(**label)
        self._snapshot_age = registry.gauge(
            "repro_store_snapshot_age_seconds",
            "Wall seconds since the last snapshot (+inf when none)",
            labels=("store",),
        ).labels(**label)
        self.recoveries = registry.counter(
            "repro_store_recoveries_total",
            "Recovery (open) events",
            labels=("store",),
        ).labels(**label)
        self.recovery_seconds = registry.counter(
            "repro_store_recovery_seconds_total",
            "Wall time spent in recovery",
            labels=("store",),
        ).labels(**label)
        self.replayed_records = registry.counter(
            "repro_store_replayed_records_total",
            "WAL records replayed during recoveries",
            labels=("store",),
        ).labels(**label)
        self.quarantined_bytes = registry.counter(
            "repro_store_quarantined_bytes_total",
            "Corrupt WAL-tail bytes quarantined during recoveries",
            labels=("store",),
        ).labels(**label)
        self.old_versions = registry.counter(
            "repro_store_old_marked_total",
            "Versions marked old at recovery (checking time < t - delta)",
            labels=("store",),
        ).labels(**label)
        self.revalidations = registry.counter(
            "repro_store_revalidations_total",
            "Recovered-old versions re-proved current on first touch",
            labels=("store",),
        ).labels(**label)

    def on_fsync(self, seconds: float) -> None:
        self.fsync_seconds.observe(seconds)

    def on_append(self, nbytes: int) -> None:
        self.wal_records.inc()
        self.wal_bytes.inc(nbytes)

    def on_append_many(self, count: int, nbytes: int) -> None:
        self.wal_records.inc(count)
        self.wal_bytes.inc(nbytes)

    def on_snapshot(self) -> None:
        self.snapshots.inc()

    def on_revalidation(self) -> None:
        self.revalidations.inc()

    def on_recovery(self, recovered: Any) -> None:
        """Record one :class:`~repro.store.recovery.RecoveredState`."""
        self.recoveries.inc()
        self.recovery_seconds.inc(max(recovered.recovery_seconds, 0.0))
        self.replayed_records.inc(recovered.replayed_records)
        self.quarantined_bytes.inc(recovered.quarantined_bytes)
        self.old_versions.inc(len(recovered.old_objects))

    def bind_snapshot_age(self, fn) -> None:
        self._snapshot_age.set_function(fn)


class PipelineInstruments:
    """Request-pipeline metrics for the exactly-once TCP layer.

    One instance per endpoint, labeled by ``side`` (``client`` or
    ``server``) plus optional ``site``/``device`` discriminators — the
    label *names* are fixed so routers, standalone clients, and servers
    can all share one registry (a family's label names must agree).

    * ``repro_net_batch_size`` — operations coalesced per batch frame
      (:meth:`on_batch`);
    * ``repro_net_busy_events_total`` — ``busy`` backpressure frames
      (sent, on the server side; honored, on the client side);
    * ``repro_net_outstanding_requests`` — pipelined requests in flight,
      pulled at scrape time (:meth:`bind_outstanding`);
    * ``repro_net_batch_queue_depth`` — writes waiting in the client's
      coalescing queue, pulled at scrape time (:meth:`bind_queue_depth`).
    """

    LABEL_NAMES = ("side", "site", "device")

    def __init__(
        self,
        registry: Registry,
        side: str = "client",
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.registry = registry
        # Keep only the fixed label names (extra deployment labels like
        # ``role``/``stack`` are dropped): the family's label *names*
        # must agree across every client, server, and router sharing
        # the registry.
        given = {k: str(v) for k, v in (labels or {}).items()}
        label = {name: given.get(name, "") for name in self.LABEL_NAMES}
        label["side"] = str(side)
        self.batch_size = registry.histogram(
            "repro_net_batch_size",
            "Operations coalesced into one batch frame",
            labels=self.LABEL_NAMES,
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        ).labels(**label)
        self.busy_events = registry.counter(
            "repro_net_busy_events_total",
            "Busy backpressure frames (server side: sent; client side: "
            "honored with backoff and an identical-id reissue)",
            labels=self.LABEL_NAMES,
        ).labels(**label)
        self._outstanding = registry.gauge(
            "repro_net_outstanding_requests",
            "Pipelined requests issued and not yet answered",
            labels=self.LABEL_NAMES,
        ).labels(**label)
        self._queue_depth = registry.gauge(
            "repro_net_batch_queue_depth",
            "Writes waiting in the client's batch-coalescing queue",
            labels=self.LABEL_NAMES,
        ).labels(**label)

    def on_batch(self, size: int) -> None:
        self.batch_size.observe(size)

    def on_busy(self) -> None:
        self.busy_events.inc()

    def bind_outstanding(self, fn) -> None:
        self._outstanding.set_function(fn)

    def bind_queue_depth(self, fn) -> None:
        self._queue_depth.set_function(fn)


class ClusterInstruments:
    """Failure-detector and failover metrics for one
    :class:`~repro.cluster.swim.SwimAgent`.

    Families carry a ``member`` label so every member of a co-hosted
    cluster (the soak harness, tests) can share one registry:

    * ``repro_cluster_probe_rtt_seconds`` — round-trip of one probe
      attempt, labeled by ``result`` (``ack`` direct, ``indirect``
      proxy-confirmed, ``failed``);
    * ``repro_cluster_transitions_total`` — member state transitions by
      target ``state`` (``suspect``/``dead`` are the detector firing);
    * ``repro_cluster_refutations_total`` — incarnation bumps answering
      a false suspicion;
    * ``repro_cluster_ring_epoch`` — the ring epoch this member serves
      at, pulled at scrape time (:meth:`bind_epoch`) — the gauge a
      converged cluster agrees on;
    * ``repro_cluster_gossip_bytes`` — agent-link octets by
      ``direction``, pulled at scrape time (:meth:`bind_gossip`);
    * ``repro_cluster_failovers_total`` plus the two latency gauges —
      ``time_to_detect`` (crash → dead transition, set by harnesses
      that know the crash instant) and ``time_to_recover`` (crash →
      new epoch serving, the bound ``bench_failover`` checks against
      ``3·probe_period + suspect_timeout``).
    """

    def __init__(self, registry: Registry, member: Any = 0) -> None:
        self.registry = registry
        label = {"member": str(member)}
        probe_family = registry.histogram(
            "repro_cluster_probe_rtt_seconds",
            "Round-trip of one probe attempt (direct or via proxies)",
            labels=("member", "result"),
            buckets=exponential_buckets(start=0.0001, count=16),
        )
        self._probe_rtt = {
            result: probe_family.labels(member=str(member), result=result)
            for result in ("ack", "indirect", "failed")
        }
        transitions = registry.counter(
            "repro_cluster_transitions_total",
            "Member state transitions observed, by resulting state",
            labels=("member", "state"),
        )
        self._transitions = {
            state: transitions.labels(member=str(member), state=state)
            for state in ("alive", "suspect", "dead", "left")
        }
        self.refutations = registry.counter(
            "repro_cluster_refutations_total",
            "Incarnation bumps refuting a false suspicion of this member",
            labels=("member",),
        ).labels(**label)
        self._epoch = registry.gauge(
            "repro_cluster_ring_epoch",
            "Ring epoch this member currently serves at",
            labels=("member",),
        ).labels(**label)
        # Gauges bound to pull functions: the monotone totals live in
        # the agent links' FrameConnections; scraping reads them.
        gossip = registry.gauge(
            "repro_cluster_gossip_bytes",
            "Octets over this member's agent links, by direction",
            labels=("member", "direction"),
        )
        self._gossip_sent = gossip.labels(member=str(member), direction="sent")
        self._gossip_received = gossip.labels(
            member=str(member), direction="received"
        )
        self.failovers = registry.counter(
            "repro_cluster_failovers_total",
            "Failover/join plans executed by this member as coordinator",
            labels=("member",),
        ).labels(**label)
        self._time_to_detect = registry.gauge(
            "repro_cluster_time_to_detect_seconds",
            "Crash-to-dead-transition latency of the last detected death",
            labels=("member",),
        ).labels(**label)
        self._time_to_recover = registry.gauge(
            "repro_cluster_time_to_recover_seconds",
            "Crash-to-new-epoch latency of the last completed failover",
            labels=("member",),
        ).labels(**label)

    def on_probe(self, rtt: float, result: str) -> None:
        self._probe_rtt.get(result, self._probe_rtt["failed"]).observe(
            max(rtt, 0.0)
        )

    def on_transition(self, state: str) -> None:
        counter = self._transitions.get(state)
        if counter is not None:
            counter.inc()

    def on_refutation(self) -> None:
        self.refutations.inc()

    def on_failover(self, seconds: float) -> None:
        self.failovers.inc()

    def bind_epoch(self, fn) -> None:
        self._epoch.set_function(fn)

    def bind_gossip(self, sent_fn, received_fn) -> None:
        self._gossip_sent.set_function(sent_fn)
        self._gossip_received.set_function(received_fn)

    def set_time_to_detect(self, seconds: float) -> None:
        self._time_to_detect.set(max(seconds, 0.0))

    def set_time_to_recover(self, seconds: float) -> None:
        self._time_to_recover.set(max(seconds, 0.0))


class TimedInstruments:
    """The bundle a live stack wires into its read/write completions.

    One ``on_read``/``on_write`` call per completed operation feeds the
    on-time judgement, the visibility-lag histogram (violations tied to
    the read judgement, not raw age), and the event-trace ring.
    ``epsilon`` may be assigned after construction — clock-sync error
    bounds are only known once the transport handshakes finish.
    """

    def __init__(
        self,
        registry: Registry,
        delta: float,
        epsilon: float = 0.0,
        *,
        window: int = DEFAULT_WINDOW,
        initial_value: Any = 0,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        self.registry = registry
        self.visibility = VisibilityLag(registry, delta, epsilon)
        self.ontime = OnTimeRatio(
            registry, delta, epsilon,
            window=window, initial_value=initial_value,
        )
        self.trace = EventTrace(
            trace_capacity, registry=registry, initial_value=initial_value,
        )

    @property
    def epsilon(self) -> float:
        return self.ontime.epsilon

    @epsilon.setter
    def epsilon(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"epsilon must be non-negative, got {value}")
        self.ontime.epsilon = value
        self.visibility.epsilon = value

    @property
    def delta(self) -> float:
        return self.ontime.delta

    def on_write(
        self,
        site: int,
        obj: str,
        value: Any,
        time: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> None:
        self.ontime.observe_write(obj, value, time)
        self.trace.record_write(site, obj, value, time, start=start, end=end)

    def on_read(
        self,
        site: int,
        obj: str,
        value: Any,
        time: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> OnTimeVerdict:
        verdict = self.ontime.observe_read(obj, value, time)
        if verdict.lag is not None:
            self.visibility.observe(
                verdict.lag, violated=verdict.on_time is False
            )
        elif verdict.on_time is False:
            self.visibility.violations.inc()
        self.trace.record_read(site, obj, value, time, start=start, end=end)
        return verdict

    def summary(self) -> Dict[str, Any]:
        """A flat dict for reports and CLI tables."""
        counts = self.ontime.counts
        return {
            "delta": self.delta,
            "epsilon": self.epsilon,
            "reads_on_time": counts["on_time"],
            "reads_late": counts["late"],
            "reads_unjudged": counts["unjudged"],
            "writes": counts["writes"],
            "ontime_ratio": self.ontime.ratio,
            "required_delta": self.ontime.required_delta,
            "lag_p50": self.visibility.histogram._default.quantile(0.5),
            "lag_p99": self.visibility.histogram._default.quantile(0.99),
            "violations": int(self.visibility.violations.value),
            "trace_events": len(self.trace),
            "trace_dropped": self.trace.dropped,
        }
