"""repro.obs — unified observability for every runtime layer.

The metrics core (:mod:`repro.obs.metrics`), the timed-consistency
instruments (:mod:`repro.obs.instruments`), the Prometheus/HTTP
exposition (:mod:`repro.obs.expo`), and the pull-model bridges over the
existing stat structs (:mod:`repro.obs.bridge`).  See
docs/OBSERVABILITY.md for the metric catalogue, label conventions, and
the on-time-ratio semantics relative to the paper's Definitions 1–2.
"""

from repro.obs.bridge import (
    bind_client_stats,
    bind_monitor_stats,
    bind_net_server,
    bind_placement_stats,
    bind_router_stats,
    bind_search_stats,
    bind_sim_server,
    bind_simulator,
)
from repro.obs.expo import (
    MetricsServer,
    render_prometheus,
    scrape,
    snapshot_rows,
)
from repro.obs.instruments import (
    DEFAULT_TRACE_CAPACITY,
    DEFAULT_WINDOW,
    ClusterInstruments,
    EventTrace,
    OnTimeRatio,
    OnTimeVerdict,
    PipelineInstruments,
    StoreInstruments,
    TimedInstruments,
    VisibilityLag,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    diff_snapshots,
    exponential_buckets,
    family,
    get_registry,
    load_snapshot,
    merge_snapshots,
)

__all__ = [
    "REGISTRY",
    "ClusterInstruments",
    "Counter",
    "DEFAULT_TRACE_CAPACITY",
    "DEFAULT_WINDOW",
    "EventTrace",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsServer",
    "OnTimeRatio",
    "OnTimeVerdict",
    "PipelineInstruments",
    "Registry",
    "StoreInstruments",
    "TimedInstruments",
    "VisibilityLag",
    "bind_client_stats",
    "bind_monitor_stats",
    "bind_net_server",
    "bind_placement_stats",
    "bind_router_stats",
    "bind_search_stats",
    "bind_sim_server",
    "bind_simulator",
    "diff_snapshots",
    "exponential_buckets",
    "family",
    "get_registry",
    "load_snapshot",
    "merge_snapshots",
    "render_prometheus",
    "scrape",
    "snapshot_rows",
]
