"""A dependency-free metrics core: counters, gauges, histograms, registry.

The runtime layers (sim protocol, TCP servers, ring routers, checkers)
each grew ad-hoc counter structs; this module gives them one substrate,
shaped after the Prometheus data model but built from scratch:

* :class:`Counter` — monotone accumulator, optional labels;
* :class:`Gauge` — settable value, optional callback-backed;
* :class:`Histogram` — exponential (or custom) buckets, cumulative
  counts, sum and count, for latency/lag distributions;
* :class:`Registry` — a named family store with get-or-create
  accessors, *collector* registration (pull-model bridges over the
  existing stat structs, see :mod:`repro.obs.bridge`), JSON-able
  :meth:`Registry.snapshot`, snapshot :func:`merge_snapshots` /
  :func:`diff_snapshots`, and :meth:`Registry.reset`.

Two update models coexist deliberately:

* **push** — hot paths call ``child.inc()`` / ``child.observe()`` on a
  pre-bound label child (one dict lookup at bind time, an attribute add
  per event afterwards); used where the event itself carries information
  the struct-of-ints style cannot (latency samples, per-label splits);
* **pull** — a *collector* callable registered with the registry reads
  an existing stats struct (``ClientStats``, ``SearchStats``,
  ``PlacementStats``, a :class:`~repro.sim.kernel.Simulator`) only at
  scrape/snapshot time, so instrumented hot paths keep their native
  ``int`` arithmetic and pay nothing between scrapes.

Metric names follow ``repro_<layer>_<quantity>_<unit>`` (see
docs/OBSERVABILITY.md for the catalogue and label conventions).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"
KINDS = (COUNTER, GAUGE, HISTOGRAM)


class MetricError(ValueError):
    """Misuse of the metrics API (bad name, kind clash, label mismatch)."""


def exponential_buckets(
    start: float = 0.0001, factor: float = 2.0, count: int = 16
) -> Tuple[float, ...]:
    """Upper bounds ``start, start*factor, ...`` (``count`` finite edges).

    The default spans 0.1 ms .. ~3.3 s, which covers localhost RTTs,
    visibility lags around sub-second deltas, and checker wall times.
    A terminal ``+inf`` bucket is implicit in every histogram.
    """
    if start <= 0:
        raise MetricError(f"bucket start must be positive, got {start}")
    if factor <= 1.0:
        raise MetricError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise MetricError(f"bucket count must be >= 1, got {count}")
    return tuple(start * factor ** i for i in range(count))


def _label_key(
    label_names: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise MetricError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _CounterChild:
    """One label combination of a counter; ``inc`` is the hot path."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up, got {amount}")
        self.value += amount


class _GaugeChild:
    """One label combination of a gauge; optionally callback-backed."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from ``fn()`` at scrape time (pull model)."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class _HistogramChild:
    """One label combination of a histogram."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "_HistogramChild") -> None:
        """Fold ``other``'s observations into this child, in place.

        Both children must share the same bucket bounds — merging is
        then *exact* at bucket granularity (elementwise count sums), so
        a quantile of the merged child equals the quantile of one child
        that had seen every observation.  The only error is the one all
        bucketed quantiles carry: :meth:`quantile` returns the upper
        bound of the bucket holding the q-th observation, so the
        estimate is never below the true value and overshoots it by at
        most one bucket's relative width (for
        :func:`exponential_buckets` with growth ``factor``, true <=
        estimate <= true * factor).  Merging adds no error on top.
        """
        if other.bounds != self.bounds:
            raise MetricError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (upper bound of
        the bucket holding the q-th observation; +inf maps to the last
        finite bound for readability)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= target:
                return bound
        return self.bounds[-1] if self.bounds else math.inf


_CHILD_FACTORIES = {
    COUNTER: lambda metric: _CounterChild(),
    GAUGE: lambda metric: _GaugeChild(),
    HISTOGRAM: lambda metric: _HistogramChild(metric.buckets),
}


class Metric:
    """One named family: a kind, help text, label names, and children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        if kind not in KINDS:
            raise MetricError(f"kind must be one of {KINDS}, got {kind!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        if buckets is not None and kind != HISTOGRAM:
            raise MetricError(f"buckets are only for histograms, not {kind}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        if kind == HISTOGRAM:
            bounds = tuple(buckets) if buckets is not None else exponential_buckets()
            if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise MetricError(f"bucket bounds must be strictly increasing: {bounds}")
            self.buckets: Tuple[float, ...] = bounds
        else:
            self.buckets = ()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: Any) -> Any:
        """The child for one label combination (created on first use).

        Bind once, call ``inc``/``set``/``observe`` on the child in the
        hot path — the lookup cost is paid here, not per event.
        """
        key = _label_key(self.label_names, {k: str(v) for k, v in labels.items()})
        child = self._children.get(key)
        if child is None:
            child = _CHILD_FACTORIES[self.kind](self)
            self._children[key] = child
        return child

    @property
    def _default(self) -> Any:
        """The unlabeled child (only valid when the family has no labels)."""
        if self.label_names:
            raise MetricError(
                f"{self.name} has labels {self.label_names}; use .labels()"
            )
        return self.labels()

    # Unlabeled conveniences -------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default.set_function(fn)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def value(self) -> float:
        return self._default.value

    # Introspection ----------------------------------------------------------

    def samples(self) -> List[Dict[str, Any]]:
        """JSON-able samples, one per label combination."""
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = dict(zip(self.label_names, key))
            if self.kind == HISTOGRAM:
                out.append({
                    "labels": labels,
                    "buckets": [
                        [bound, count] for bound, count in child.cumulative()
                    ],
                    "sum": child.sum,
                    "count": child.count,
                })
            else:
                out.append({"labels": labels, "value": child.value})
        return out

    def clear(self) -> None:
        self._children.clear()


def family(
    name: str,
    kind: str,
    help: str = "",
    samples: Iterable[Tuple[Dict[str, str], float]] = (),
) -> Dict[str, Any]:
    """Build a collector-produced family (counter/gauge samples only).

    Collectors return lists of these dicts — the same shape
    :meth:`Metric.samples` produces, so exposition code treats direct
    metrics and collected families identically.
    """
    if kind not in (COUNTER, GAUGE):
        raise MetricError(f"collectors may only emit counter/gauge, not {kind}")
    return {
        "name": name,
        "kind": kind,
        "help": help,
        "samples": [
            {"labels": dict(labels), "value": float(value)}
            for labels, value in samples
        ],
    }


Collector = Callable[[], Iterable[Dict[str, Any]]]


class Registry:
    """A process-wide (or scoped) store of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: a second call
    with the same name returns the existing family (kind and label names
    must agree), so independent components share one family and
    differentiate by labels.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Collector] = []

    # Creation ---------------------------------------------------------------

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise MetricError(
                    f"{name} already registered as {existing.kind}, not {kind}"
                )
            if existing.label_names != tuple(label_names):
                raise MetricError(
                    f"{name} already registered with labels "
                    f"{existing.label_names}, not {tuple(label_names)}"
                )
            return existing
        metric = Metric(name, kind, help, label_names, buckets)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Metric:
        return self._get_or_create(name, COUNTER, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Metric:
        return self._get_or_create(name, GAUGE, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Metric:
        return self._get_or_create(name, HISTOGRAM, help, labels, buckets)

    def register_collector(self, collector: Collector) -> Collector:
        """Register a pull-model bridge; see :mod:`repro.obs.bridge`."""
        self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Collector) -> None:
        if collector in self._collectors:
            self._collectors.remove(collector)

    # Access -----------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # Collection -------------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        """Every family as a JSON-able dict: direct metrics first (name
        order), then collector output in registration order.  Collector
        families with a name already emitted are merged sample-wise."""
        families: List[Dict[str, Any]] = []
        index: Dict[str, int] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            index[name] = len(families)
            families.append({
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            })
        for collector in self._collectors:
            for fam in collector():
                at = index.get(fam["name"])
                if at is None:
                    index[fam["name"]] = len(families)
                    families.append(dict(fam))
                else:
                    families[at]["samples"] = (
                        list(families[at]["samples"]) + list(fam["samples"])
                    )
        return families

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able point-in-time capture of every family."""
        return {"version": 1, "metrics": self.collect()}

    def save(self, path: str) -> None:
        """Persist :meth:`snapshot` atomically (tmp + rename), so a
        scraper or a crash mid-save never observes a torn JSON file."""
        from repro.core.io import atomic_write_json

        atomic_write_json(path, self.snapshot(), fsync=False)

    def reset(self) -> None:
        """Zero every direct metric (families and collectors survive)."""
        for metric in self._metrics.values():
            metric.clear()


def _sample_key(sample: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(sample.get("labels", {}).items()))


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Sum counters/histograms across snapshots; gauges take the last
    snapshot's value.  The fleet-level aggregation for per-process dumps
    (the ``ClientStats.merge`` idea, at registry granularity)."""
    merged: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for snapshot in snapshots:
        for fam in snapshot.get("metrics", ()):
            name = fam["name"]
            if name not in merged:
                merged[name] = {
                    "name": name, "kind": fam["kind"],
                    "help": fam.get("help", ""), "samples": {},
                }
                order.append(name)
            target = merged[name]["samples"]
            for sample in fam["samples"]:
                key = _sample_key(sample)
                if key not in target:
                    target[key] = json.loads(json.dumps(sample))
                    continue
                existing = target[key]
                if fam["kind"] == GAUGE:
                    existing["value"] = sample["value"]
                elif fam["kind"] == HISTOGRAM:
                    if (
                        [b for b, _ in existing["buckets"]]
                        != [b for b, _ in sample["buckets"]]
                    ):
                        raise MetricError(
                            f"snapshot merge: histogram {name!r} has "
                            "mismatched bucket bounds across snapshots"
                        )
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                    existing["buckets"] = [
                        [a_bound, a_count + b_count]
                        for (a_bound, a_count), (_b, b_count)
                        in zip(existing["buckets"], sample["buckets"])
                    ]
                else:
                    existing["value"] += sample["value"]
    return {
        "version": 1,
        "metrics": [
            {
                "name": merged[name]["name"],
                "kind": merged[name]["kind"],
                "help": merged[name]["help"],
                "samples": [
                    merged[name]["samples"][key]
                    for key in sorted(merged[name]["samples"])
                ],
            }
            for name in order
        ],
    }


def diff_snapshots(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """``after - before`` for counters and histogram counts/sums; gauges
    report the after value.  Samples absent from ``before`` count from
    zero; families absent from ``after`` are dropped."""
    before_index: Dict[Tuple[str, Tuple], Dict[str, Any]] = {}
    for fam in before.get("metrics", ()):
        for sample in fam["samples"]:
            before_index[(fam["name"], _sample_key(sample))] = sample
    out: List[Dict[str, Any]] = []
    for fam in after.get("metrics", ()):
        samples = []
        for sample in fam["samples"]:
            base = before_index.get((fam["name"], _sample_key(sample)))
            diffed = json.loads(json.dumps(sample))
            if base is not None and fam["kind"] == COUNTER:
                diffed["value"] = sample["value"] - base["value"]
            elif base is not None and fam["kind"] == HISTOGRAM:
                diffed["sum"] = sample["sum"] - base["sum"]
                diffed["count"] = sample["count"] - base["count"]
                diffed["buckets"] = [
                    [a_bound, a_count - b_count]
                    for (a_bound, a_count), (_b, b_count)
                    in zip(sample["buckets"], base["buckets"])
                ]
            samples.append(diffed)
        out.append({
            "name": fam["name"], "kind": fam["kind"],
            "help": fam.get("help", ""), "samples": samples,
        })
    return {"version": 1, "metrics": out}


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise MetricError(f"{path} is not a registry snapshot")
    return snapshot


#: The default process-wide registry (components accept a ``registry``
#: argument and fall back to this one).
REGISTRY = Registry()


def get_registry() -> Registry:
    return REGISTRY


def Counter(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    *,
    registry: Optional[Registry] = None,
) -> Metric:
    """Get-or-create a counter (in ``registry`` or the process default)."""
    return (registry if registry is not None else REGISTRY).counter(
        name, help, labels
    )


def Gauge(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    *,
    registry: Optional[Registry] = None,
) -> Metric:
    """Get-or-create a gauge (in ``registry`` or the process default)."""
    return (registry if registry is not None else REGISTRY).gauge(
        name, help, labels
    )


def Histogram(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    buckets: Optional[Sequence[float]] = None,
    *,
    registry: Optional[Registry] = None,
) -> Metric:
    """Get-or-create a histogram (in ``registry`` or the process default)."""
    return (registry if registry is not None else REGISTRY).histogram(
        name, help, labels, buckets
    )
