"""Exposition: Prometheus text rendering and the ``/metrics`` endpoint.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.Registry`
(or a snapshot dict) into the Prometheus text format (version 0.0.4),
and :class:`MetricsServer` serves it over a tiny asyncio HTTP/1.0
responder — no dependencies, embeddable next to any asyncio stack
(:class:`~repro.net.server.NetObjectServer`, the ring soak, ``repro obs
serve``).  Routes:

* ``GET /metrics``      — Prometheus text exposition;
* ``GET /metrics.json`` — the registry snapshot as JSON;
* ``GET /healthz``      — liveness (optionally a caller-supplied check).

The responder reads one request, answers, and closes — scrape clients
(Prometheus, ``curl``, the CI soak step) all speak that subset.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.metrics import COUNTER, GAUGE, HISTOGRAM, Registry

_MAX_REQUEST_BYTES = 8192


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(source: Union[Registry, Dict[str, Any]]) -> str:
    """The text exposition of a registry or snapshot dict."""
    families = (
        source.collect() if isinstance(source, Registry)
        else source.get("metrics", [])
    )
    lines: List[str] = []
    for fam in families:
        name, kind = fam["name"], fam["kind"]
        if fam.get("help"):
            lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in fam["samples"]:
            labels = dict(sample.get("labels", {}))
            if kind == HISTOGRAM:
                for bound, count in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def snapshot_rows(
    snapshot: Dict[str, Any], kinds: tuple = (COUNTER, GAUGE)
) -> List[Dict[str, Any]]:
    """Flat ``{metric, labels, value}`` rows for table rendering
    (histograms are summarized as ``_count``/``_sum`` rows)."""
    rows: List[Dict[str, Any]] = []
    for fam in snapshot.get("metrics", []):
        for sample in fam["samples"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(sample.get("labels", {}).items())
            )
            if fam["kind"] == HISTOGRAM:
                if HISTOGRAM not in kinds:
                    continue
                rows.append({"metric": fam["name"] + "_count",
                             "labels": labels, "value": sample["count"]})
                rows.append({"metric": fam["name"] + "_sum",
                             "labels": labels,
                             "value": round(sample["sum"], 6)})
            elif fam["kind"] in kinds:
                value = sample["value"]
                rows.append({
                    "metric": fam["name"], "labels": labels,
                    "value": int(value) if float(value).is_integer() else
                    round(value, 6),
                })
    return rows


class MetricsServer:
    """Serve a registry over HTTP: ``/metrics``, ``/metrics.json``,
    ``/healthz``.

    ``health`` is an optional zero-argument callable returning either a
    bool or a JSON-able dict; an exception or falsy result turns
    ``/healthz`` into a 503 (the drain path of
    :meth:`repro.net.server.NetObjectServer.shutdown` uses this to fail
    readiness while connections flush).
    """

    def __init__(
        self,
        registry: Registry,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        health: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.health = health
        self.scrapes = 0
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> "MetricsServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "MetricsServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- request handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 400, "text/plain", b"request too large")
            return
        try:
            method, path, _version = (
                request.split(b"\r\n", 1)[0].decode("latin-1").split(" ", 2)
            )
        except ValueError:
            await self._respond(writer, 400, "text/plain", b"bad request line")
            return
        path = path.split("?", 1)[0]
        if method not in ("GET", "HEAD"):
            await self._respond(writer, 405, "text/plain", b"method not allowed")
            return
        if path == "/metrics":
            self.scrapes += 1
            body = render_prometheus(self.registry).encode("utf-8")
            await self._respond(
                writer, 200,
                "text/plain; version=0.0.4; charset=utf-8", body,
                head_only=method == "HEAD",
            )
        elif path == "/metrics.json":
            self.scrapes += 1
            body = json.dumps(self.registry.snapshot(), sort_keys=True).encode()
            await self._respond(writer, 200, "application/json", body,
                                head_only=method == "HEAD")
        elif path == "/healthz":
            status, payload = self._health_payload()
            await self._respond(
                writer, status, "application/json",
                json.dumps(payload, sort_keys=True).encode(),
                head_only=method == "HEAD",
            )
        else:
            await self._respond(writer, 404, "text/plain", b"not found")

    def _health_payload(self) -> tuple:
        if self.health is None:
            return 200, {"status": "ok"}
        try:
            result = self.health()
        except Exception as exc:  # health probe itself failing is unhealthy
            return 503, {"status": "error", "error": repr(exc)}
        if isinstance(result, dict):
            healthy = result.get("status", "ok") == "ok"
            return (200 if healthy else 503), result
        return (200, {"status": "ok"}) if result else (503, {"status": "draining"})

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        head_only: bool = False,
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 503: "Service Unavailable"}
        head = (
            f"HTTP/1.0 {status} {reason.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head if head_only else head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()


async def scrape(
    host: str, port: int, path: str = "/metrics", timeout: float = 5.0
) -> tuple:
    """A minimal asyncio scrape client: ``(status, body_text)``.

    Used by tests and the CI soak step; real deployments point an actual
    Prometheus at the endpoint instead.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")
