"""Delta-causal broadcast (Section 4's comparison point, refs [7, 8])."""

from repro.broadcast.delta_causal import (
    BroadcastStats,
    DeliveryRecord,
    DeltaCausalProcess,
    Multicast,
    causal_violations,
)
from repro.broadcast.harness import BroadcastExperiment, run_broadcast_experiment
from repro.broadcast.replicated_store import (
    ReplicatedStoreProcess,
    ReplicatedStoreResult,
    run_replicated_store,
)

__all__ = [
    "BroadcastExperiment",
    "BroadcastStats",
    "DeliveryRecord",
    "DeltaCausalProcess",
    "Multicast",
    "ReplicatedStoreProcess",
    "ReplicatedStoreResult",
    "causal_violations",
    "run_broadcast_experiment",
    "run_replicated_store",
]
