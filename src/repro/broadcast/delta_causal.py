"""Delta-causal broadcast (Baldoni, Mostefaoui, Prakash, Raynal, Singhal).

The paper's Section 4 contrasts timed consistency with the
*delta-causality* of references [7, 8]: multimedia messages carry a
lifetime ``delta``; a receiver delivers a message only if (a) its causal
predecessors have been delivered or have expired, and (b) its own
lifetime has not passed — "late messages are never delivered, and it is
assumed that a more updated message will eventually be received".

This module implements that protocol over the simulator:

* every process multicasts messages stamped with a vector timestamp and
  the send ("birth") time; the deadline is ``birth + delta``;
* a receiver buffers out-of-order messages.  A buffered message is
  *deliverable* when, for every sender ``j``, the number of ``j``-messages
  already processed (delivered or declared expired) covers the message's
  vector entry;
* a missing predecessor is declared **expired** once some received
  message proves it was sent before a known deadline that has passed
  (any received message whose vector entry covers the missing sequence
  number was sent causally after it, so the missing message's deadline is
  no later than that message's);
* a buffered message still undeliverable at its own deadline is
  **discarded** — the defining difference from the paper's TCC, which
  would validate/refresh a late *value* rather than drop it.

Delivered messages never violate causal order (asserted by the tests);
the delta knob trades delivery ratio against freshness, mirroring
Figure 4(b)'s trade-off in the messaging domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clocks.vector import VectorTimestamp
from repro.sim.kernel import Simulator
from repro.sim.network import Message, Network
from repro.sim.node import Node

BCAST = "delta-causal-bcast"


@dataclass(frozen=True)
class Multicast:
    """One application message."""

    sender: int
    seq: int  # 1-based per-sender sequence number
    timestamp: VectorTimestamp
    payload: Any
    birth: float
    deadline: float

    def __repr__(self) -> str:
        return f"Multicast(s{self.sender}#{self.seq} @{self.birth:g})"


@dataclass
class DeliveryRecord:
    message: Multicast
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.message.birth


@dataclass
class BroadcastStats:
    sent: int = 0
    delivered: int = 0
    discarded_late: int = 0
    predecessors_expired: int = 0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 1.0


class DeltaCausalProcess(Node):
    """One participant: multicasts and delivers under delta-causality."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        slot: int,
        width: int,
        delta: float,
        on_deliver: Optional[Callable[[int, Multicast], None]] = None,
    ) -> None:
        super().__init__(node_id, sim, network)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.slot = slot
        self.width = width
        self.delta = delta
        self.on_deliver = on_deliver
        self._sent = [0] * width  # my own per-slot send counter lives here
        #: j-messages processed (delivered or expired), per slot.
        self.processed = [0] * width
        #: buffered out-of-order messages: (slot, seq) -> Multicast
        self.buffer: Dict[Tuple[int, int], Multicast] = {}
        #: tightest known deadline proving a missing (slot, seq) expired.
        self._expiry_bound: Dict[Tuple[int, int], float] = {}
        self.deliveries: List[DeliveryRecord] = []
        self.stats = BroadcastStats()

    # -- sending ------------------------------------------------------------

    def multicast(self, payload: Any) -> Multicast:
        """Send to every peer (and deliver locally, as usual for bcast)."""
        self._sent[self.slot] += 1
        timestamp = VectorTimestamp(
            tuple(
                self.processed[k] if k != self.slot else self._sent[self.slot] - 1
                for k in range(self.width)
            )
        )
        message = Multicast(
            sender=self.slot,
            seq=self._sent[self.slot],
            timestamp=timestamp,
            payload=payload,
            birth=self.sim.now,
            deadline=self.sim.now + self.delta,
        )
        self.stats.sent += 1
        self.network.broadcast(self.node_id, BCAST, {"message": message})
        self._deliver(message)  # local delivery is immediate and causal
        return message

    # -- receiving ------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind != BCAST:
            raise ValueError(f"unexpected message kind {message.kind}")
        multicast: Multicast = message.payload["message"]
        if self.sim.now > multicast.deadline:
            self._discard(multicast)
            self._note_expiry_evidence(multicast)
            self._drain()
            return
        key = (multicast.sender, multicast.seq)
        if multicast.seq <= self.processed[multicast.sender]:
            return  # duplicate or already expired-and-superseded
        self.buffer[key] = multicast
        self._note_expiry_evidence(multicast)
        # Re-examine at this message's deadline if it is still stuck.
        self.sim.schedule_at(multicast.deadline, self._deadline_check, key)
        self._drain()

    def _note_expiry_evidence(self, multicast: Multicast) -> None:
        """``multicast`` was sent after every message its vector covers,
        so any missing (j, s <= VT[j]) expires by ``multicast.deadline``."""
        for j in range(self.width):
            covered = multicast.timestamp[j]
            if j == multicast.sender:
                covered = multicast.seq - 1
            for s in range(self.processed[j] + 1, covered + 1):
                key = (j, s)
                bound = self._expiry_bound.get(key, math.inf)
                tightened = min(bound, multicast.deadline)
                self._expiry_bound[key] = tightened
                if tightened != bound and tightened > self.sim.now:
                    # Wake up when the gap becomes expirable, so blocked
                    # successors are not needlessly discarded later.
                    self.sim.schedule_at(tightened, self._drain)

    def _deadline_check(self, key: Tuple[int, int]) -> None:
        multicast = self.buffer.pop(key, None)
        if multicast is not None:
            self._discard(multicast)
        self._drain()

    # -- delivery engine ----------------------------------------------------

    def _deliverable(self, multicast: Multicast) -> bool:
        if multicast.seq != self.processed[multicast.sender] + 1:
            return False
        for j in range(self.width):
            if j == multicast.sender:
                continue
            if self.processed[j] < multicast.timestamp[j]:
                return False
        return True

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            # 1. Deliver everything currently deliverable.
            for key in sorted(self.buffer):
                multicast = self.buffer[key]
                if self.sim.now > multicast.deadline:
                    del self.buffer[key]
                    self._discard(multicast)
                    progress = True
                elif self._deliverable(multicast):
                    del self.buffer[key]
                    self._deliver(multicast)
                    progress = True
            # 2. Expire proven-dead gaps blocking the head of any queue.
            for j in range(self.width):
                key = (j, self.processed[j] + 1)
                if key in self.buffer:
                    continue
                bound = self._expiry_bound.get(key)
                if bound is not None and self.sim.now >= bound:
                    self.processed[j] += 1
                    self.stats.predecessors_expired += 1
                    self._expiry_bound.pop(key, None)
                    progress = True

    def _deliver(self, multicast: Multicast) -> None:
        self.processed[multicast.sender] = multicast.seq
        self._expiry_bound.pop((multicast.sender, multicast.seq), None)
        self.stats.delivered += 1
        self.deliveries.append(DeliveryRecord(multicast, self.sim.now))
        if self.on_deliver is not None:
            self.on_deliver(self.slot, multicast)

    def _discard(self, multicast: Multicast) -> None:
        self.stats.discarded_late += 1
        # A discarded message still counts as "processed" once its slot
        # reaches it, via the expiry-bound mechanism (its own deadline is
        # the tightest possible bound).
        key = (multicast.sender, multicast.seq)
        bound = self._expiry_bound.get(key, math.inf)
        self._expiry_bound[key] = min(bound, multicast.deadline)


def _causally_precedes(m1: Multicast, m2: Multicast) -> bool:
    """``m1 -> m2`` in the broadcast causality (from the vector stamps)."""
    if m1 is m2:
        return False
    needed = m2.seq - 1 if m1.sender == m2.sender else m2.timestamp[m1.sender]
    return m1.seq <= needed


def causal_violations(processes: List[DeltaCausalProcess]) -> int:
    """Count per-process delivery pairs that invert causal order.

    Delta-causality's guarantee: among *delivered* messages, causal order
    is respected (expired predecessors may be skipped, but a delivered
    predecessor is never delivered after its successor).  Must be 0.
    """
    violations = 0
    for proc in processes:
        order = {id(r.message): i for i, r in enumerate(proc.deliveries)}
        messages = [r.message for r in proc.deliveries]
        for m1 in messages:
            for m2 in messages:
                if _causally_precedes(m1, m2) and order[id(m1)] > order[id(m2)]:
                    violations += 1
    return violations
