"""A replicated object store over delta-causal broadcast.

The paper's conclusions call for *other implementations* of timed
consistency beyond the lifetime caches of Section 5; this is the natural
push-based one, built on the Section 4 machinery of Baldoni et al.:

* every write is multicast with lifetime ``delta``;
* each replica applies delivered writes with a convergent last-writer-wins
  rule (physical birth time, then sender id), so concurrent writes
  delivered in different orders leave all replicas in the same state;
* reads are served from the local replica with zero latency.

Guarantees (measured by the benches, not just claimed):

* the recorded execution is **causally consistent** — delta-causal
  delivery never inverts causal order, and LWW only skips *concurrent*
  older writes;
* on a loss-free network every write reaches every replica within
  ``delta`` plus nothing — the trace's timedness threshold is at most
  ``delta`` — so the store implements TCC(delta) by *pushing*;
* under message loss the guarantee degrades in exactly the way the paper
  notes about delta-causality: a dropped write is never delivered, and
  the replica stays stale *until a more recent write supersedes it* —
  unlike the pull-based Section 5 protocol, whose validations repair
  staleness on access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.broadcast.delta_causal import DeltaCausalProcess, Multicast
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder


@dataclass
class _Applied:
    """The replica's current value of one object."""

    value: Any
    birth: float
    sender: int


class ReplicatedStoreProcess(DeltaCausalProcess):
    """One replica: local reads, multicast writes, LWW application."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        slot: int,
        width: int,
        delta: float,
        recorder: Optional[TraceRecorder] = None,
        initial_value: Any = 0,
    ) -> None:
        super().__init__(
            node_id, sim, network, slot, width, delta, on_deliver=None
        )
        self.recorder = recorder
        self.initial_value = initial_value
        self.replica: Dict[str, _Applied] = {}
        self.on_deliver = self._apply  # type: ignore[assignment]

    # -- application API ------------------------------------------------------

    def write_object(self, obj: str, value: Any) -> Multicast:
        """Multicast a write; it applies locally immediately."""
        message = self.multicast({"obj": obj, "value": value})
        if self.recorder is not None:
            self.recorder.record_write(
                self.node_id, obj, value, message.birth
            )
        return message

    def read_object(self, obj: str) -> Any:
        """Read the local replica (zero latency)."""
        applied = self.replica.get(obj)
        value = self.initial_value if applied is None else applied.value
        if self.recorder is not None:
            self.recorder.record_read(self.node_id, obj, value, self.sim.now)
        return value

    # -- replication ------------------------------------------------------------

    def _apply(self, _slot: int, message: Multicast) -> None:
        payload = message.payload
        obj, value = payload["obj"], payload["value"]
        current = self.replica.get(obj)
        if current is None or (message.birth, message.sender) > (
            current.birth, current.sender
        ):
            self.replica[obj] = _Applied(value, message.birth, message.sender)


@dataclass
class ReplicatedStoreResult:
    delta: float
    processes: List[ReplicatedStoreProcess]
    recorder: TraceRecorder

    def history(self, validate: bool = True):
        return self.recorder.history(validate=validate)

    def totals(self) -> Dict[str, int]:
        sent = sum(p.stats.sent for p in self.processes)
        delivered = sum(p.stats.delivered for p in self.processes)
        discarded = sum(p.stats.discarded_late for p in self.processes)
        return {"sent": sent, "delivered": delivered, "discarded_late": discarded}


def run_replicated_store(
    delta: float,
    n_replicas: int = 4,
    rounds: int = 25,
    n_objects: int = 3,
    mean_interval: float = 0.1,
    write_fraction: float = 0.3,
    seed: int = 0,
    latency=None,
    drop_probability: float = 0.0,
) -> ReplicatedStoreResult:
    """Drive a mixed read/write workload over the replicated store."""
    from repro.sim.network import LogNormalLatency
    from repro.sim.rng import RngRegistry, exponential

    sim = Simulator()
    rngs = RngRegistry(seed)
    network = Network(
        sim,
        latency_model=latency or LogNormalLatency(median=0.02, sigma=0.8),
        rng=rngs.stream("network"),
        drop_probability=drop_probability,
    )
    recorder = TraceRecorder()
    processes = [
        ReplicatedStoreProcess(
            i, sim, network, slot=i, width=n_replicas, delta=delta,
            recorder=recorder,
        )
        for i in range(n_replicas)
    ]
    objects = [f"obj{k}" for k in range(n_objects)]
    counter = [0]

    def unique_value(slot: int) -> str:
        counter[0] += 1
        return f"r{slot}.{counter[0]}"

    def workload(proc: ReplicatedStoreProcess, rng):
        for _ in range(rounds):
            yield sim.timeout(exponential(rng, 1.0 / mean_interval))
            obj = rng.choice(objects)
            if rng.random() < write_fraction:
                proc.write_object(obj, unique_value(proc.slot))
            else:
                proc.read_object(obj)

    for proc in processes:
        sim.process(workload(proc, rngs.stream(f"wl:{proc.slot}")))
    sim.run()
    return ReplicatedStoreResult(delta=delta, processes=processes, recorder=recorder)
