"""Experiment harness for delta-causal broadcast.

Runs N multicasting processes over a lossy/jittery network and measures
the Figure 4(b)-style trade-off in the messaging domain: larger delta
gives higher delivery ratios but allows older messages through; smaller
delta keeps only fresh messages at the price of discarding more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.broadcast.delta_causal import (
    BroadcastStats,
    DeltaCausalProcess,
    causal_violations,
)
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, LogNormalLatency, Network
from repro.sim.rng import RngRegistry, exponential


@dataclass
class BroadcastExperiment:
    """Everything one configuration produced."""

    delta: float
    processes: List[DeltaCausalProcess]
    stats: BroadcastStats
    latencies: List[float]
    violations: int

    @property
    def delivery_ratio(self) -> float:
        """Delivered / possible, where possible = multicasts x processes
        (every process, including the sender, should deliver each)."""
        possible = self.stats.sent * len(self.processes)
        return self.stats.delivered / possible if possible else 1.0

    def row(self) -> Dict[str, Any]:
        return {
            "delta": self.delta,
            "sent": self.stats.sent,
            "delivered": self.stats.delivered,
            "delivery_ratio": round(self.delivery_ratio, 4),
            "discarded_late": self.stats.discarded_late,
            "expired_preds": self.stats.predecessors_expired,
            "max_latency": round(max(self.latencies), 4) if self.latencies else 0.0,
            "mean_latency": round(
                sum(self.latencies) / len(self.latencies), 4
            ) if self.latencies else 0.0,
            "causal_violations": self.violations,
        }


def run_broadcast_experiment(
    delta: float,
    n_processes: int = 5,
    messages_per_process: int = 40,
    mean_interval: float = 0.05,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    drop_probability: float = 0.0,
) -> BroadcastExperiment:
    """Run one delta configuration to completion."""
    sim = Simulator()
    rngs = RngRegistry(seed)
    network = Network(
        sim,
        latency_model=latency or LogNormalLatency(median=0.02, sigma=1.0),
        rng=rngs.stream("network"),
        drop_probability=drop_probability,
    )
    processes = [
        DeltaCausalProcess(i, sim, network, slot=i, width=n_processes, delta=delta)
        for i in range(n_processes)
    ]

    def chatter(proc: DeltaCausalProcess, rng):
        for n in range(messages_per_process):
            yield sim.timeout(exponential(rng, 1.0 / mean_interval))
            proc.multicast(f"p{proc.slot}.m{n}")

    for proc in processes:
        sim.process(chatter(proc, rngs.stream(f"chatter:{proc.slot}")))
    sim.run()

    total = BroadcastStats()
    latencies: List[float] = []
    for proc in processes:
        total.sent += proc.stats.sent
        total.delivered += proc.stats.delivered
        total.discarded_late += proc.stats.discarded_late
        total.predecessors_expired += proc.stats.predecessors_expired
        # Remote deliveries only (local delivery latency is trivially 0).
        latencies.extend(
            r.latency for r in proc.deliveries if r.message.sender != proc.slot
        )
    return BroadcastExperiment(
        delta=delta,
        processes=processes,
        stats=total,
        latencies=latencies,
        violations=causal_violations(processes),
    )
