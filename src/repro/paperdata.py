"""The paper's worked example executions, encoded as histories.

The PODC '99 text gives full operation sequences for Figures 1, 5 and 6 but
(in the transcription we work from) only a handful of effective times
survive.  Those stated times are kept exactly:

* Figure 5: ``w0(C)6 @ 338``, ``w2(C)7 @ 340``, ``r4(C)6 @ 436``
  (436 - 340 = 96), ``w2(B)5 @ 274``, ``r3(B)2 @ 301`` (301 - 274 = 27);
* Figure 6: ``w2(C)3 @ 98``, second ``r4(C)0 @ 155`` (155 - 98 = 57).

All other effective times are **reconstructed**: they respect per-site
program order, keep each figure's claimed classification (Figure 5 is SC
but not LIN; Figure 6 is CC but not SC) and do not disturb the stated
thresholds for the reads the paper discusses.  EXPERIMENTS.md records which
numbers are paper-exact and which depend on the reconstruction.

Figure 1 has no explicit times at all; we use the common reconstruction
(an early write of 1, a later write of 7 by another site, and a site that
keeps reading 1) with ``FIGURE1_DELTA = 60`` chosen so the narrative holds:
the first two reads are on time, LIN is already broken by the second read,
and later reads make the execution untimed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.history import History
from repro.core.operations import Operation, read, write

#: The delta the shaded span of Figure 1 represents (reconstructed).
FIGURE1_DELTA = 60.0

#: Paper-exact thresholds quoted in the Figure 5 narrative.
FIGURE5_DELTA_VIOLATING = 50.0
FIGURE5_THRESHOLD_C = 96.0  # r4(C)6 @436 vs w2(C)7 @340
FIGURE5_THRESHOLD_B = 27.0  # r3(B)2 @301 vs w2(B)5 @274

#: Paper-exact data quoted in the Figure 6 narrative.
FIGURE6_DELTA_VIOLATING = 30.0
FIGURE6_LATE_READ_TIME = 155.0
FIGURE6_MISSED_WRITE_TIME = 98.0


def figure1() -> History:
    """Figure 1: sequentially consistent but not timed (and not LIN).

    One site writes ``x = 1``, another later writes ``x = 7``; a third site
    keeps reading 1.  SC can serialize the write of 7 before the write of 1,
    but the reads get staler and staler in real time.
    """
    return History(
        [
            write(1, "x", 1, 50.0),
            write(0, "x", 7, 100.0),
            read(2, "x", 1, 60.0),
            read(2, "x", 1, 140.0),
            read(2, "x", 1, 250.0),
            read(2, "x", 1, 420.0),
        ]
    )


@dataclass(frozen=True)
class OnTimeScenario:
    """The single-read scenario of Figures 2 and 3.

    One object, writes ``w1, w, w2, w3, w4`` in time order, and a read
    ``r`` that returns ``w``'s value.  Under Definition 1 (perfect clocks)
    ``W_r = {w2, w3}`` so the read is late; under Definition 2 with the
    figure's ``epsilon`` the window shrinks by ``2 * epsilon`` and the read
    is on time.
    """

    delta: float
    epsilon: float
    history: History

    @property
    def the_read(self) -> Operation:
        return self.history.reads[0]


def figures2_3() -> OnTimeScenario:
    """The arrangement of Figures 2-3 with delta = 40 and epsilon = 40.

    Times: w1@20, w@60, w2@100, w3@140, w4@170, r@200 (cutoff
    ``T(r) - delta = 160``).  Definition 1: ``60 < 100, 140 < 160`` puts w2
    and w3 in ``W_r``.  Definition 2 with epsilon = 40: w and w2 become
    concurrent (60 + 40 >= 100) and w3 cannot be shown to precede the
    cutoff (140 + 40 >= 160), so ``W_r`` is empty.
    """
    ops: List[Operation] = [
        write(0, "X", "v1", 20.0),
        write(1, "X", "v", 60.0),
        write(2, "X", "v2", 100.0),
        write(3, "X", "v3", 140.0),
        write(4, "X", "v4", 170.0),
        read(5, "X", "v", 200.0),
    ]
    return OnTimeScenario(delta=40.0, epsilon=40.0, history=History(ops, initial_value=None))


def figure5() -> History:
    """Figure 5(a): a sequentially consistent execution over objects A, B, C.

    Stated times are kept exactly; the rest are reconstructed (see module
    docstring).  The serialization of Figure 5(b) is available from
    :func:`figure5_serialization` and proves SC.
    """
    return History(
        [
            # Site 0
            write(0, "B", 4, 105.0),
            write(0, "C", 6, 338.0),  # paper-exact
            read(0, "A", 9, 360.0),
            read(0, "B", 5, 385.0),
            # Site 1
            read(1, "B", 2, 148.0),
            read(1, "A", 0, 185.0),
            write(1, "A", 9, 345.0),
            read(1, "B", 5, 390.0),
            read(1, "C", 7, 433.0),
            # Site 2
            write(2, "C", 3, 89.0),
            read(2, "A", 0, 135.0),
            write(2, "B", 5, 274.0),  # paper-exact
            write(2, "C", 7, 340.0),  # paper-exact
            write(2, "A", 8, 380.0),
            write(2, "A", 10, 420.0),
            # Site 3
            read(3, "B", 0, 65.0),
            write(3, "B", 1, 91.0),
            read(3, "A", 0, 140.0),
            read(3, "B", 2, 301.0),  # paper-exact
            read(3, "B", 5, 377.0),
            # Site 4
            read(4, "C", 0, 35.0),
            write(4, "B", 2, 130.0),
            read(4, "C", 3, 228.0),
            read(4, "C", 6, 436.0),  # paper-exact
            read(4, "C", 7, 480.0),
        ]
    )


def figure5_serialization(history: History) -> List[Operation]:
    """The explicit Figure 5(b) serialization (program-order respecting)."""
    labels = [
        "r4(C)0", "r3(B)0", "w0(B)4", "w2(C)3", "r2(A)0", "w3(B)1",
        "r3(A)0", "w4(B)2", "r4(C)3", "r3(B)2", "r1(B)2", "r1(A)0",
        "w0(C)6", "w1(A)9", "r0(A)9", "w2(B)5", "r1(B)5", "r0(B)5",
        "r3(B)5", "r4(C)6", "w2(C)7", "r1(C)7", "r4(C)7", "w2(A)8",
        "w2(A)10",
    ]
    return _by_labels(history, labels)


def figure6() -> History:
    """Figure 6(a): causally consistent but not sequentially consistent.

    ``r0(B)4`` (site 0 re-reading its own stale B after observing A = 9)
    disallows a single global serialization; per-site causal
    serializations exist (Figure 6(b)).

    Reconstruction note: the transcription we work from garbles several
    operation values, and the literally transcribed multiset *is*
    sequentially consistent (our checker exhibits a witness).  To restore
    the paper's claimed classification we let site 3 observe the two
    concurrent B writes in the order 4-then-2 (``r3(B)4`` at 290).  Then
    ``w0(B)4 < w4(B)2`` is forced by site 3, while site 0's final
    ``r0(B)4`` — which causally follows ``w4(B)2`` through ``w1(A)9`` —
    needs ``w0(B)4`` to be the most recent B write, a contradiction.  That
    is exactly the failure the paper attributes to ``r0(B)4``.
    """
    return History(
        [
            # Site 0
            write(0, "B", 4, 110.0),
            write(0, "C", 6, 210.0),
            read(0, "A", 9, 310.0),
            read(0, "B", 4, 400.0),
            # Site 1
            read(1, "B", 2, 120.0),
            read(1, "A", 0, 180.0),
            write(1, "A", 9, 260.0),
            read(1, "B", 2, 350.0),
            read(1, "C", 7, 440.0),
            # Site 2
            write(2, "C", 3, 98.0),  # paper-exact
            read(2, "A", 0, 160.0),
            write(2, "B", 5, 230.0),
            write(2, "C", 7, 300.0),
            write(2, "A", 8, 370.0),
            write(2, "A", 10, 450.0),
            # Site 3 (r3(B)4 is reconstructed: see docstring)
            read(3, "B", 0, 70.0),
            write(3, "B", 1, 125.0),
            read(3, "A", 0, 200.0),
            read(3, "B", 4, 290.0),
            read(3, "B", 2, 410.0),
            # Site 4
            read(4, "C", 0, 40.0),
            write(4, "B", 2, 100.0),
            read(4, "C", 0, 155.0),  # paper-exact
            read(4, "C", 3, 320.0),
            read(4, "C", 7, 430.0),
        ]
    )


def figure6_serializations(history: History) -> dict:
    """The per-site serializations of Figure 6(b): for each site ``i``, a
    legal serialization of ``H_{i+w}`` respecting causal order.

    S0, S1, S2 and S4 are the paper's own (modulo the garbled values the
    transcription lost); S3 is adapted to the reconstructed ``r3(B)4``
    (see :func:`figure6`'s docstring).
    """
    sequences = {
        0: [
            "w4(B)2", "w0(B)4", "w0(C)6", "w1(A)9", "r0(A)9", "r0(B)4",
            "w2(C)3", "w2(B)5", "w2(C)7", "w2(A)8", "w2(A)10", "w3(B)1",
        ],
        1: [
            "w2(C)3", "w2(B)5", "w4(B)2", "r1(B)2", "r1(A)0", "w1(A)9",
            "r1(B)2", "w2(C)7", "r1(C)7", "w0(B)4", "w0(C)6", "w2(A)8",
            "w2(A)10", "w3(B)1",
        ],
        2: [
            "w2(C)3", "r2(A)0", "w2(B)5", "w2(C)7", "w2(A)8", "w2(A)10",
            "w4(B)2", "w0(B)4", "w0(C)6", "w1(A)9", "w3(B)1",
        ],
        3: [
            "r3(B)0", "w3(B)1", "r3(A)0", "w0(B)4", "r3(B)4", "w4(B)2",
            "r3(B)2", "w2(C)3", "w2(B)5", "w2(C)7", "w0(C)6", "w1(A)9",
            "w2(A)8", "w2(A)10",
        ],
        4: [
            "r4(C)0", "w4(B)2", "r4(C)0", "w2(C)3", "w2(B)5", "r4(C)3",
            "w2(C)7", "r4(C)7", "w0(B)4", "w0(C)6", "w1(A)9", "w2(A)8",
            "w2(A)10", "w3(B)1",
        ],
    }
    return {
        site: _by_labels(history, labels) for site, labels in sequences.items()
    }


def figure6_late_read(history: History) -> Operation:
    """The second ``r4(C)0`` (at 155) that violates TCC for delta = 30."""
    reads = [
        op
        for op in history.site_ops(4)
        if op.is_read and op.obj == "C" and op.value == 0
    ]
    return reads[1]


def _by_labels(history: History, labels: List[str]) -> List[Operation]:
    """Resolve paper-style labels to this history's operations, in order.

    Duplicate labels (repeated reads of the same value) resolve in program
    order.
    """
    pools = {}
    for op in sorted(history.operations, key=lambda o: o.time):
        pools.setdefault(op.label(), []).append(op)
    out: List[Operation] = []
    taken = {label: 0 for label in pools}
    for label in labels:
        if label not in pools or taken[label] >= len(pools[label]):
            raise KeyError(f"label {label} not found (or exhausted) in history")
        out.append(pools[label][taken[label]])
        taken[label] += 1
    return out
