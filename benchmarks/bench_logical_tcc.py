"""Section 5.4: approximating timed consistency with logical clocks.

Every operation in a causal-protocol trace carries its vector timestamp,
so Definition 6 can be evaluated with a xi map instead of physical time.
The paper's proposal: "timed consistency requires that if a write is
executed at logical time t, it must be visible at site i before
xi(t_i) - xi(t) > delta" — delta now measured in *global activity*.

Measured here: for the TCC protocol at several physical deltas, the
trace's Definition-6 threshold under SumXi (how much global activity a
read may lag).  Tightening the physical delta must tighten the logical
threshold too — that correlation is what makes the purely-logical
approximation usable.
"""

from _report import report

from repro.checkers import check_cc, check_tcc_logical
from repro.clocks.xi import EuclideanXi, SumXi
from repro.core.timed import min_timed_delta, min_timed_delta_logical
from repro.protocol import Cluster
from repro.workloads import uniform_workload


def run_delta(delta, seed=19):
    cluster = Cluster(n_clients=4, n_servers=1, variant="tcc", delta=delta, seed=seed)
    cluster.spawn(uniform_workload(["A", "B", "C"], n_ops=35, write_fraction=0.25))
    cluster.run()
    history = cluster.history()
    sum_xi = SumXi()
    logical_thr = min_timed_delta_logical(history, sum_xi)
    return {
        "physical_delta": delta,
        "physical_threshold": round(min_timed_delta(history), 4),
        "logical_threshold_sum": round(logical_thr, 2),
        "logical_threshold_euclid": round(
            min_timed_delta_logical(history, EuclideanXi()), 2
        ),
        "tcc_logical_at_thr": check_tcc_logical(history, logical_thr, sum_xi).satisfied,
        "cc": check_cc(history).satisfied,
    }


def run_sweep():
    return [run_delta(d) for d in (0.1, 0.3, 1.0, 3.0)]


def test_logical_tcc(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["cc"]
        assert row["tcc_logical_at_thr"]
        # Physical timedness held at delta + slack, so the physical
        # threshold stays below delta + one round trip.
        assert row["physical_threshold"] <= row["physical_delta"] + 0.15
    # Correlation: a tighter physical delta gives a logical threshold at
    # least as tight (monotone across the sweep's endpoints).
    assert rows[0]["logical_threshold_sum"] <= rows[-1]["logical_threshold_sum"]
    report(
        "Section 5.4 — Definition 6 thresholds (xi over vector timestamps) "
        "of TCC protocol traces",
        rows,
        columns=[
            "physical_delta", "physical_threshold", "logical_threshold_sum",
            "logical_threshold_euclid", "tcc_logical_at_thr", "cc",
        ],
        notes="delta in 'amount of global activity': tightening the "
        "physical bound tightens how much activity a read may lag.",
    )
