"""Figure 7 and Section 5.4: xi maps from logical timestamps to reals.

Reproduces the paper's worked values (length of <3,4> = 5, <3,2> = 3.61,
<2,4> = 4.47; sum of <35,4,0,72> = 111) and validates Definition 5 on a
grid of vector timestamps for every shipped xi map.
"""

import itertools

import pytest

from _report import report

from repro.clocks.vector import VectorTimestamp
from repro.clocks.xi import EuclideanXi, PNormXi, SumXi, WeightedXi, validate_xi


def paper_values():
    euclid, total = EuclideanXi(), SumXi()
    return {
        "len<3,4>": euclid(VectorTimestamp((3, 4))),
        "len<3,2>": euclid(VectorTimestamp((3, 2))),
        "len<2,4>": euclid(VectorTimestamp((2, 4))),
        "sum<35,4,0,72>": total(VectorTimestamp((35, 4, 0, 72))),
    }


def test_figure7_values(benchmark):
    values = benchmark(paper_values)
    assert values["len<3,4>"] == pytest.approx(5.0)
    assert values["len<3,2>"] == pytest.approx(3.61, abs=0.01)
    assert values["len<2,4>"] == pytest.approx(4.47, abs=0.01)
    assert values["sum<35,4,0,72>"] == 111.0
    report(
        "Figure 7 — xi values on the paper's example timestamps",
        [
            {"quantity": "||<3,4>||", "paper": 5.0,
             "measured": round(values["len<3,4>"], 4)},
            {"quantity": "||<3,2>||", "paper": 3.61,
             "measured": round(values["len<3,2>"], 4)},
            {"quantity": "||<2,4>||", "paper": 4.47,
             "measured": round(values["len<2,4>"], 4)},
            {"quantity": "sum(<35,4,0,72>)", "paper": 111,
             "measured": values["sum<35,4,0,72>"]},
        ],
        columns=["quantity", "paper", "measured"],
    )


def grid_timestamps(width=3, bound=5):
    return [
        VectorTimestamp(entries)
        for entries in itertools.product(range(bound), repeat=width)
    ]


def test_definition5_on_grid(benchmark):
    maps = {
        "SumXi": SumXi(),
        "EuclideanXi": EuclideanXi(),
        "PNorm(1.5)": PNormXi(1.5),
        "Weighted(2,1,0.5)": WeightedXi((2.0, 1.0, 0.5)),
    }
    stamps = grid_timestamps()

    def validate_all():
        return {name: validate_xi(xi, stamps) for name, xi in maps.items()}

    verdicts = benchmark.pedantic(validate_all, rounds=1, iterations=1)
    assert all(v is None for v in verdicts.values()), verdicts
    report(
        "Section 5.4 — Definition 5 validation over a 5^3 vector grid",
        [
            {"xi map": name, "Definition 5 holds": verdict is None}
            for name, verdict in verdicts.items()
        ],
        columns=["xi map", "Definition 5 holds"],
    )
