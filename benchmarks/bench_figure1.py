"""Figure 1: a sequentially consistent but non-timed execution.

Paper claims reproduced here:
* the execution satisfies SC and CC but not LIN;
* with the figure's delta, the first reads are on time, then timedness is
  lost for good;
* the execution is TSC only for delta >= 320 (last read at 420 missing
  the write at 100).
"""

from _report import report

from repro.checkers import check_cc, check_lin, check_sc, tsc_threshold
from repro.core.timed import read_occurs_on_time
from repro.paperdata import FIGURE1_DELTA, figure1


def classify_figure1():
    history = figure1()
    reads = sorted(history.reads, key=lambda r: r.time)
    return {
        "sc": check_sc(history).satisfied,
        "cc": check_cc(history).satisfied,
        "lin": check_lin(history).satisfied,
        "on_time": [
            read_occurs_on_time(history, r, FIGURE1_DELTA) for r in reads
        ],
        "threshold": tsc_threshold(history),
    }


def test_figure1(benchmark):
    result = benchmark(classify_figure1)
    assert result["sc"] and result["cc"] and not result["lin"]
    assert result["on_time"] == [True, True, False, False]
    assert result["threshold"] == 320.0
    report(
        "Figure 1 — SC/CC but not timed",
        [
            {
                "claim": "SC holds", "paper": True, "measured": result["sc"],
            },
            {
                "claim": "CC holds", "paper": True, "measured": result["cc"],
            },
            {
                "claim": "LIN holds", "paper": False, "measured": result["lin"],
            },
            {
                "claim": f"reads on time at delta={FIGURE1_DELTA:g}",
                "paper": "first two only",
                "measured": str(result["on_time"]),
            },
            {
                "claim": "TSC threshold",
                "paper": "finite (execution eventually untimed)",
                "measured": result["threshold"],
            },
        ],
        columns=["claim", "paper", "measured"],
    )
