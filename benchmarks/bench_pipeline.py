"""Write throughput vs pipelining depth and batching on the TCP path.

The exactly-once request layer decouples issuing from completing: a
client may keep ``pipeline_depth`` requests outstanding on one
connection, and coalesce queued writes into ``write-batch`` frames that
amortize framing and the store's fsync across the batch.  The layer's
claim (docs/NET_PROTOCOL.md) is that this is a pure throughput win —
the server installs each batched write with its own effective time, so
the merged trace still satisfies the timed criterion.  This bench makes
both halves falsifiable: it drives the same write-heavy workload at
depth 1 (the old stop-and-wait behaviour), depth 8, and depth 8 with
batching, asserts the pipelined+batched arm clears a 2x throughput
floor over stop-and-wait, and hands every arm's recorded trace to the
offline TSC checker.

Runs two ways:

* ``pytest benchmarks/bench_pipeline.py`` — full bench, appends the
  table to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_pipeline.py [--smoke]`` — plain script for
  CI; ``--smoke`` shrinks the workload, keeping the same 2x floor (the
  gap is latency-bound, so it survives noisy shared runners).
"""

import asyncio
import math
import time

from repro.checkers import check_tsc
from repro.net.client import NetCacheClient
from repro.net.server import NetObjectServer
from repro.sim.trace import TraceRecorder, UniqueValueFactory

OBJECTS = [f"obj{i}" for i in range(8)]
#: Per-request server latency: the realistic regime the pipeline is
#: for.  Stop-and-wait pays it per write, the pipeline overlaps it, a
#: batch frame pays it once per batch — which is what keeps the
#: speedup assertion latency-bound rather than scheduler-noise-bound.
SERVER_LATENCY = 0.002
SPEEDUP_FLOOR = 2.0  # the issue's acceptance bound, smoke and full
WAVE = 32  # writes issued concurrently per burst (the pipelining source)

ARMS = (
    {"arm": "depth1", "depth": 1, "batch": 0},
    {"arm": "depth8", "depth": 8, "batch": 0},
    {"arm": "depth8+batch8", "depth": 8, "batch": 8},
)


async def _drive(n_writes, *, depth, batch):
    """One workload run; returns (seconds, tsc_result, client_stats)."""
    recorder = TraceRecorder()
    values = UniqueValueFactory()
    server = NetObjectServer(propagation="none", latency=SERVER_LATENCY)
    await server.start()
    client = NetCacheClient(
        1, server.host, server.port, recorder=recorder,
        pipeline_depth=depth, batch=batch,
    )
    await client.connect()
    try:
        start = time.perf_counter()
        issued = 0
        while issued < n_writes:
            chunk = min(WAVE, n_writes - issued)
            await asyncio.gather(*(
                client.write(
                    OBJECTS[(issued + j) % len(OBJECTS)],
                    values.next_value(client.client_id),
                )
                for j in range(chunk)
            ))
            issued += chunk
            # A read per burst keeps the trace a real history (reads-from
            # validation) rather than a pure write log.
            await client.read(OBJECTS[issued % len(OBJECTS)])
        elapsed = time.perf_counter() - start
        epsilon = client.epsilon_bound
        stats = client.stats
    finally:
        await client.close()
        await server.close()
    tsc = check_tsc(recorder.history(), math.inf, epsilon)
    return elapsed, tsc, stats


def run_once(n_writes, depth, batch):
    return asyncio.run(_drive(n_writes, depth=depth, batch=batch))


def rows_for(n_writes, trials):
    """Best-of-N per arm, interleaved so drift hits every arm equally."""
    best = {spec["arm"]: (float("inf"), None, None) for spec in ARMS}
    for _ in range(trials):
        for spec in ARMS:
            result = run_once(n_writes, spec["depth"], spec["batch"])
            if result[0] < best[spec["arm"]][0]:
                best[spec["arm"]] = result
    baseline = best["depth1"][0]
    rows = []
    for spec in ARMS:
        seconds, tsc, stats = best[spec["arm"]]
        rows.append({
            "arm": spec["arm"],
            "seconds": round(seconds, 4),
            "writes/s": round(n_writes / seconds, 1),
            "speedup": round(baseline / seconds, 3),
            "batched_writes": stats.batched_writes,
            "tsc": "ok" if tsc.satisfied else "VIOLATED",
        })
    return rows


def _check(rows):
    """The acceptance bar: checker-clean traces, 2x pipelined+batched."""
    violations = [r["arm"] for r in rows if r["tsc"] != "ok"]
    if violations:
        raise SystemExit(f"TSC violated under arms {violations}: {rows}")
    speedup = next(r["speedup"] for r in rows if r["arm"] == "depth8+batch8")
    if speedup < SPEEDUP_FLOOR:
        raise SystemExit(
            f"depth8+batch8 speedup {speedup:.3f}x below the "
            f"{SPEEDUP_FLOOR:.1f}x floor: {rows}"
        )
    return speedup


def _emit_bench(rows, n_writes, trials, smoke):
    """BENCH_pipeline.json: the machine-readable twin of the table."""
    from _report import bench_json

    metrics = {}
    for row in rows:
        arm = row["arm"].replace("+", "_")
        metrics[f"{arm}_writes_per_s"] = row["writes/s"]
        metrics[f"{arm}_speedup"] = row["speedup"]
        metrics[f"{arm}_tsc_ok"] = row["tsc"] == "ok"
    metrics["speedup_floor"] = SPEEDUP_FLOOR
    bench_json(
        "pipeline",
        {"n_writes": n_writes, "trials": trials, "smoke": smoke,
         "server_latency_s": SERVER_LATENCY, "wave": WAVE},
        metrics,
        notes="write throughput vs pipelining depth and batching (TCP)",
    )


def test_pipeline_throughput(benchmark):
    from _report import report

    rows = rows_for(n_writes=400, trials=3)
    report(
        "Write throughput vs pipelining depth and batching (TCP)",
        rows,
        notes=(
            f"server latency {SERVER_LATENCY * 1e3:g}ms/request; floor: "
            f"depth8+batch8 >= {SPEEDUP_FLOOR:.1f}x depth1; every arm's "
            "trace re-checked with TSC"
        ),
    )
    _emit_bench(rows, n_writes=400, trials=3, smoke=False)
    violations = [r["arm"] for r in rows if r["tsc"] != "ok"]
    assert not violations, rows
    speedup = next(r["speedup"] for r in rows if r["arm"] == "depth8+batch8")
    assert speedup >= SPEEDUP_FLOOR, rows
    benchmark(run_once, 64, 8, 8)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload for CI (same 2x floor)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="also append the table to latest_results.txt",
    )
    args = parser.parse_args(argv)
    n_writes, trials = (128, 2) if args.smoke else (400, 3)
    rows = rows_for(n_writes, trials)
    if args.report:
        from _report import report

        report(
            "Write throughput vs pipelining depth and batching (TCP)",
            rows,
            notes=(
                f"--smoke={args.smoke}; floor depth8+batch8 >= "
                f"{SPEEDUP_FLOOR:.1f}x depth1; traces TSC-checked"
            ),
        )
    _emit_bench(rows, n_writes, trials, smoke=args.smoke)
    for row in rows:
        print(
            f"{row['arm']:>13}: {row['seconds']:.4f}s "
            f"({row['writes/s']:.0f} writes/s, {row['speedup']:.3f}x, "
            f"{row['batched_writes']} batched, tsc {row['tsc']})"
        )
    speedup = _check(rows)
    print(
        f"OK: depth8+batch8 {speedup:.3f}x >= floor {SPEEDUP_FLOOR:.1f}x; "
        "all traces TSC-clean"
    )


if __name__ == "__main__":
    main()
