"""Section 4's Dow Jones / CNN anecdote, measured.

* Both CC and TCC keep the trace causally consistent (the story's causal
  dependence on the index is never inverted).
* Under plain CC an idle reader's cached index can be arbitrarily old and
  the cache still satisfies CC — unbounded staleness.
* TCC(delta) bounds the age of every read at delta (+ 1 round trip).
"""

import math

from _report import report

from repro.analysis.metrics import staleness_report
from repro.checkers import check_cc
from repro.protocol import Cluster
from repro.workloads import ticker_workload

SLACK = 0.15


def run_ticker(variant, delta, seed=3):
    cluster = Cluster(n_clients=5, n_servers=1, variant=variant, delta=delta, seed=seed)
    cluster.spawn(ticker_workload(n_rounds=20))
    cluster.run()
    history = cluster.history()
    stale = staleness_report(history)
    stats = cluster.aggregate_stats()
    return {
        "protocol": variant.upper() + ("" if math.isinf(delta) else f"({delta:g})"),
        "cc_holds": check_cc(history).satisfied,
        "mean_staleness": round(stale.mean, 4),
        "max_staleness": round(stale.maximum, 4),
        "msgs_per_read": round(stats.messages_per_read, 3),
        "delta": delta,
    }


def run_all():
    return [
        run_ticker("cc", math.inf),
        run_ticker("tcc", 1.0),
        run_ticker("tcc", 0.25),
    ]


def test_ticker_tcc(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for row in rows:
        assert row["cc_holds"]
    cc_row, tcc1, tcc025 = rows
    assert tcc1["max_staleness"] <= 1.0 + SLACK
    assert tcc025["max_staleness"] <= 0.25 + SLACK
    assert cc_row["max_staleness"] > tcc1["max_staleness"]
    assert tcc025["msgs_per_read"] > cc_row["msgs_per_read"]
    report(
        "Section 4 — Dow Jones / CNN: CC is causally safe but unboundedly "
        "stale; TCC bounds the age",
        [{k: v for k, v in row.items() if k != "delta"} for row in rows],
        columns=["protocol", "cc_holds", "mean_staleness", "max_staleness",
                 "msgs_per_read"],
        notes="The paper: a weeks-old Dow Jones page still satisfies CC, "
        "but not TCC with delta of a few hours.",
    )
