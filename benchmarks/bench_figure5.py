"""Figure 5: the worked SC execution and its TSC thresholds.

Paper claims reproduced here (delta values are the paper's own):
* the Figure 5(b) serialization proves SC; LIN fails;
* TSC(50) fails because r4(C)6@436 misses w2(C)7@340;
* TSC holds for delta > 96 (= 436 - 340);
* TSC fails for delta < 27 via r3(B)2@301 vs w2(B)5@274.
"""

from _report import report

from repro.checkers import check_lin, check_sc, check_tsc
from repro.core import Serialization, min_timed_delta
from repro.paperdata import figure5, figure5_serialization


def evaluate_figure5():
    history = figure5()
    serialization = Serialization(figure5_serialization(history))
    verdicts = {delta: check_tsc(history, delta).satisfied
                for delta in (26.0, 27.0, 50.0, 96.0, 97.0)}
    return {
        "serialization_ok": serialization.is_legal()
        and serialization.respects_program_order()
        and serialization.covers(history.operations),
        "sc": check_sc(history).satisfied,
        "lin": check_lin(history).satisfied,
        "tsc": verdicts,
        "threshold": min_timed_delta(history),
    }


def test_figure5(benchmark):
    result = benchmark(evaluate_figure5)
    assert result["serialization_ok"] and result["sc"] and not result["lin"]
    assert not result["tsc"][50.0] and not result["tsc"][26.0]
    assert result["tsc"][96.0] and result["tsc"][97.0]
    assert result["threshold"] == 96.0
    rows = [
        {"quantity": "Figure 5(b) serialization legal + program order",
         "paper": True, "measured": result["serialization_ok"]},
        {"quantity": "SC", "paper": True, "measured": result["sc"]},
        {"quantity": "LIN", "paper": False, "measured": result["lin"]},
        {"quantity": "TSC(delta=50)", "paper": False,
         "measured": result["tsc"][50.0]},
        {"quantity": "TSC(delta>96)", "paper": True,
         "measured": result["tsc"][97.0]},
        {"quantity": "TSC(delta<27)", "paper": False,
         "measured": result["tsc"][26.0]},
        {"quantity": "TSC threshold (436-340)", "paper": 96,
         "measured": result["threshold"]},
    ]
    report("Figure 5 — SC execution, TSC thresholds", rows,
           columns=["quantity", "paper", "measured"])
