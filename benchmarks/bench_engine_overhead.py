"""Engine-extraction overhead on the TCP hot path: engine vs legacy.

The sans-I/O refactor moved every per-request decision out of
``NetObjectServer`` into :class:`repro.engine.ServerEngine`, adding one
indirection (``engine.execute`` returning an
:class:`~repro.engine.effects.EngineResult`) where the old server ran
inline handlers.  The acceptance bar for the refactor is that this
indirection is free in practice: the engine-backed server must stay
within 5% of the frozen pre-engine handlers
(``benchmarks/_legacy_server.LegacyInlineServer``) on the same
write-heavy pipelined workload.

Server latency is 0 here — unlike ``bench_pipeline`` this bench wants
the per-request CPU cost exposed, not overlapped — and both arms share
the dispatch loop, framing, and client, so the measured delta is the
moved code plus the effect-object plumbing.  Both arms' traces are
re-checked with TSC and must install the same number of writes, so the
legacy arm provably does the same protocol work.

Runs two ways:

* ``pytest benchmarks/bench_engine_overhead.py`` — full bench, appends
  to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_engine_overhead.py [--smoke]`` — plain
  script for CI; ``--smoke`` shrinks the workload, same 5% ceiling.
"""

import asyncio
import math
import time

from _legacy_server import LegacyInlineServer

from repro.checkers import check_tsc
from repro.net.client import NetCacheClient
from repro.net.server import NetObjectServer
from repro.sim.trace import TraceRecorder, UniqueValueFactory

OBJECTS = [f"obj{i}" for i in range(8)]
#: The refactor's acceptance bound: engine time <= 1.05x legacy time.
OVERHEAD_CEILING = 1.05
DEPTH = 8  # pipelined, so the socket round-trips overlap
WAVE = 32  # writes issued concurrently per burst

ARMS = (
    {"arm": "legacy", "server": LegacyInlineServer},
    {"arm": "engine", "server": NetObjectServer},
)


async def _drive(server_cls, n_writes):
    """One workload run; returns (seconds, tsc_result, writes_installed)."""
    recorder = TraceRecorder()
    values = UniqueValueFactory()
    server = server_cls(propagation="none")
    await server.start()
    client = NetCacheClient(
        1, server.host, server.port, recorder=recorder, pipeline_depth=DEPTH,
    )
    await client.connect()
    try:
        start = time.perf_counter()
        issued = 0
        while issued < n_writes:
            chunk = min(WAVE, n_writes - issued)
            await asyncio.gather(*(
                client.write(
                    OBJECTS[(issued + j) % len(OBJECTS)],
                    values.next_value(client.client_id),
                )
                for j in range(chunk)
            ))
            issued += chunk
            # A read per burst keeps the trace a checkable history and
            # exercises the fetch/validate handlers on both arms.
            await client.read(OBJECTS[issued % len(OBJECTS)])
        elapsed = time.perf_counter() - start
        epsilon = client.epsilon_bound
        installed = server.engine.writes_installed
    finally:
        await client.close()
        await server.close()
    tsc = check_tsc(recorder.history(), math.inf, epsilon)
    return elapsed, tsc, installed


def run_once(server_cls, n_writes):
    return asyncio.run(_drive(server_cls, n_writes))


def rows_for(n_writes, trials):
    """Best-of-N per arm, interleaved so machine drift hits both arms
    equally; best-of (not mean) because scheduler noise is one-sided."""
    best = {spec["arm"]: (float("inf"), None, None) for spec in ARMS}
    for _ in range(trials):
        for spec in ARMS:
            result = run_once(spec["server"], n_writes)
            if result[0] < best[spec["arm"]][0]:
                best[spec["arm"]] = result
    baseline = best["legacy"][0]
    rows = []
    for spec in ARMS:
        seconds, tsc, installed = best[spec["arm"]]
        rows.append({
            "arm": spec["arm"],
            "seconds": round(seconds, 4),
            "writes/s": round(n_writes / seconds, 1),
            "vs_legacy": round(seconds / baseline, 3),
            "installed": installed,
            "tsc": "ok" if tsc.satisfied else "VIOLATED",
        })
    return rows


def _check(rows, n_writes):
    """The acceptance bar: same work, clean traces, <= 5% slower."""
    violations = [r["arm"] for r in rows if r["tsc"] != "ok"]
    if violations:
        raise SystemExit(f"TSC violated under arms {violations}: {rows}")
    by_arm = {r["arm"]: r for r in rows}
    if by_arm["legacy"]["installed"] != by_arm["engine"]["installed"]:
        raise SystemExit(
            "arms did different protocol work "
            f"({by_arm['legacy']['installed']} vs "
            f"{by_arm['engine']['installed']} installs): {rows}"
        )
    ratio = by_arm["engine"]["vs_legacy"]
    if ratio > OVERHEAD_CEILING:
        raise SystemExit(
            f"engine path {ratio:.3f}x legacy exceeds the "
            f"{OVERHEAD_CEILING:.2f}x overhead ceiling: {rows}"
        )
    return ratio


def _emit_bench(rows, n_writes, trials, smoke):
    """BENCH_engine.json: the machine-readable twin of the table."""
    from _report import bench_json

    by_arm = {r["arm"]: r for r in rows}
    delta_us = (
        (by_arm["engine"]["seconds"] - by_arm["legacy"]["seconds"])
        / n_writes * 1e6
    )
    bench_json(
        "engine",
        {"n_writes": n_writes, "trials": trials, "smoke": smoke,
         "depth": DEPTH, "wave": WAVE},
        {
            "legacy_writes_per_s": by_arm["legacy"]["writes/s"],
            "engine_writes_per_s": by_arm["engine"]["writes/s"],
            "engine_vs_legacy": by_arm["engine"]["vs_legacy"],
            "overhead_us_per_write": round(delta_us, 3),
            "overhead_ceiling": OVERHEAD_CEILING,
            "legacy_tsc_ok": by_arm["legacy"]["tsc"] == "ok",
            "engine_tsc_ok": by_arm["engine"]["tsc"] == "ok",
        },
        notes="sans-I/O engine vs frozen inline handlers (TCP, latency 0)",
    )


def test_engine_overhead(benchmark):
    from _report import report

    rows = rows_for(n_writes=600, trials=5)
    report(
        "Sans-I/O engine overhead vs frozen inline handlers (TCP)",
        rows,
        notes=(
            f"server latency 0, depth {DEPTH}; ceiling: engine <= "
            f"{OVERHEAD_CEILING:.2f}x legacy; both traces TSC-checked"
        ),
    )
    _emit_bench(rows, n_writes=600, trials=5, smoke=False)
    ratio = _check(rows, n_writes=600)
    assert ratio <= OVERHEAD_CEILING, rows
    benchmark(run_once, NetObjectServer, 64)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload for CI (same 5%% ceiling)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="also append the table to latest_results.txt",
    )
    args = parser.parse_args(argv)
    n_writes, trials = (200, 3) if args.smoke else (600, 5)
    rows = rows_for(n_writes, trials)
    if args.report:
        from _report import report

        report(
            "Sans-I/O engine overhead vs frozen inline handlers (TCP)",
            rows,
            notes=(
                f"--smoke={args.smoke}; ceiling engine <= "
                f"{OVERHEAD_CEILING:.2f}x legacy; traces TSC-checked"
            ),
        )
    _emit_bench(rows, n_writes, trials, smoke=args.smoke)
    for row in rows:
        print(
            f"{row['arm']:>6}: {row['seconds']:.4f}s "
            f"({row['writes/s']:.0f} writes/s, {row['vs_legacy']:.3f}x "
            f"legacy, {row['installed']} installs, tsc {row['tsc']})"
        )
    ratio = _check(rows, n_writes)
    print(
        f"OK: engine {ratio:.3f}x legacy, within the "
        f"{OVERHEAD_CEILING:.2f}x ceiling"
    )


if __name__ == "__main__":
    main()
