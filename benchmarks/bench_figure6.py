"""Figure 6: causally consistent but not sequentially consistent.

Paper claims reproduced here:
* CC holds, SC does not (``r0(B)4`` is the blamed operation — removing it
  restores SC);
* TCC(30) fails because r4(C)0@155 ignores w2(C)3@98;
* TCC holds for large enough delta (the exact threshold depends on our
  time reconstruction; see paperdata docstring and EXPERIMENTS.md).
"""

from _report import report

from repro.checkers import check_cc, check_sc, check_tcc
from repro.core import min_timed_delta, w_r_set
from repro.core.history import History
from repro.paperdata import figure6, figure6_late_read


def evaluate_figure6():
    history = figure6()
    late = figure6_late_read(history)
    pruned = History([op for op in history.operations if op.label() != "r0(B)4"])
    return {
        "cc": check_cc(history).satisfied,
        "sc": check_sc(history).satisfied,
        "sc_without_r0b4": check_sc(pruned).satisfied,
        "tcc30": check_tcc(history, 30.0).satisfied,
        "missed_at_30": [w.label() for w in w_r_set(history, late, 30.0)],
        "threshold": min_timed_delta(history),
        "tcc_at_threshold": check_tcc(history, min_timed_delta(history)).satisfied,
    }


def test_figure6(benchmark):
    result = benchmark(evaluate_figure6)
    assert result["cc"] and not result["sc"]
    assert result["sc_without_r0b4"]
    assert not result["tcc30"]
    assert result["missed_at_30"] == ["w2(C)3"]
    assert result["tcc_at_threshold"]
    rows = [
        {"quantity": "CC", "paper": True, "measured": result["cc"]},
        {"quantity": "SC", "paper": False, "measured": result["sc"]},
        {"quantity": "SC after removing r0(B)4",
         "paper": "True (r0(B)4 is blamed)",
         "measured": result["sc_without_r0b4"]},
        {"quantity": "TCC(delta=30)", "paper": False, "measured": result["tcc30"]},
        {"quantity": "write r4(C)0@155 ignores at delta=30",
         "paper": "w2(C)3 (at 98)", "measured": str(result["missed_at_30"])},
        {"quantity": "TCC threshold (reconstruction-dependent)",
         "paper": "(not stated)", "measured": result["threshold"]},
    ]
    report("Figure 6 — CC-not-SC execution, TCC at delta=30", rows,
           columns=["quantity", "paper", "measured"])
