"""Time-to-detect and time-to-recover of automatic primary failover as
the SWIM probing cadence varies.

Every cell kills the primary of a live 3-server / 2-replica ring soak
(:func:`repro.net.ring_demo.ring_cluster` with ``kill_primary_midway``)
and measures the two latencies the cluster layer promises
(docs/CLUSTER.md):

* **time_to_detect** — crash to the first survivor's DEAD transition;
  must come in under ``detection_bound = 3*probe_period +
  suspect_timeout``, the blind window the promotion rule substitutes
  for the paper's delta (``Context := max(known, t - bound)``);
* **time_to_recover** — crash to the first write re-acknowledged on the
  failed-over ring (detection + coordinator failover + epoch cutover +
  the router's stale-epoch refresh), the issue's acceptance latency.

A cell is only admitted to the table if the failover actually happened:
a promotion ran, the cluster converged on a higher ring epoch, and the
post-failover workload completed.

Runs two ways:

* ``pytest benchmarks/bench_failover.py`` — full cadence sweep, appends
  the table to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_failover.py [--smoke]`` — plain script for
  CI; ``--smoke`` runs the single default-cadence cell.
"""

import asyncio
import sys
import time

from repro.net.ring_demo import ring_cluster

SERVERS = 3
REPLICAS = 2
CLIENTS = 2
ROUNDS = 20
DELTA = 0.4

#: (probe_period, suspect_timeout) cells: the soak default, a snappier
#: detector, and a lazier one (bound 0.6s / 0.24s / 1.45s).
FULL_SWEEP = ((0.1, 0.3), (0.05, 0.09), (0.3, 0.55))
SMOKE_SWEEP = ((0.1, 0.3),)


def run_cell(probe_period, suspect_timeout, rounds=ROUNDS, seed=13):
    start = time.perf_counter()
    report = asyncio.run(
        ring_cluster(
            n_servers=SERVERS, replicas=REPLICAS, n_clients=CLIENTS,
            rounds=rounds, delta=DELTA, seed=seed,
            cluster=True, kill_primary_midway=True,
            probe_period=probe_period, suspect_timeout=suspect_timeout,
        )
    )
    wall = time.perf_counter() - start
    row = {
        "probe_s": probe_period,
        "suspect_s": suspect_timeout,
        "bound_s": round(report.detection_bound, 3),
        "detect_s": (
            round(report.time_to_detect, 3)
            if report.time_to_detect is not None else None
        ),
        "recover_s": (
            round(report.time_to_recover, 3)
            if report.time_to_recover is not None else None
        ),
        "promotions": report.promotions,
        "epoch": report.failover_epoch,
        "wall_s": round(wall, 2),
    }
    return row, report


def run_sweep(cells, rounds=ROUNDS):
    rows = []
    failures = []
    for probe_period, suspect_timeout in cells:
        row, report = run_cell(probe_period, suspect_timeout, rounds=rounds)
        rows.append(row)
        cell = f"probe={probe_period}/suspect={suspect_timeout}"
        if report.time_to_detect is None:
            failures.append(f"{cell}: victim never declared DEAD")
            continue
        if report.time_to_recover is None:
            failures.append(f"{cell}: no write re-acked after the kill")
            continue
        if report.promotions < 1:
            failures.append(f"{cell}: no server ran the promotion rule")
        if report.failover_epoch is None or report.failover_epoch <= 1:
            failures.append(f"{cell}: cluster never cut over to a new epoch")
        # Generous slack over the analytic bound: the bound is about the
        # protocol, the slack about a loaded CI host's scheduler.
        if report.time_to_detect > report.detection_bound + 2.0:
            failures.append(
                f"{cell}: detect {report.time_to_detect:.3f}s exceeds "
                f"bound {report.detection_bound:.3f}s (+2s slack)"
            )
    return rows, failures


NOTES = (
    "Real localhost TCP clusters (repro.net.ring_demo): "
    f"{SERVERS} servers x {REPLICAS} replicas, {CLIENTS} ring-routed "
    "clients; the primary of the first object is killed mid-soak. "
    "bound_s = 3*probe_period + suspect_timeout is the detection bound "
    "that plays delta in the promotion rule; detect_s is crash to the "
    "first DEAD transition, recover_s crash to the first re-acked "
    "write on the failed-over ring."
)

COLUMNS = [
    "probe_s", "suspect_s", "bound_s", "detect_s", "recover_s",
    "promotions", "epoch", "wall_s",
]


def _emit_bench(rows, smoke):
    """BENCH_failover.json: one flat metric set, keyed by cadence."""
    from _report import bench_json

    metrics = {}
    for row in rows:
        cell = f"p{row['probe_s']:g}_s{row['suspect_s']:g}".replace(".", "")
        metrics[f"{cell}_detect_s"] = row["detect_s"]
        metrics[f"{cell}_recover_s"] = row["recover_s"]
        metrics[f"{cell}_bound_s"] = row["bound_s"]
        metrics[f"{cell}_promotions"] = row["promotions"]
    bench_json(
        "failover",
        {"servers": SERVERS, "replicas": REPLICAS, "clients": CLIENTS,
         "delta": DELTA, "smoke": smoke,
         "cells": [list(c) for c in (SMOKE_SWEEP if smoke else FULL_SWEEP)]},
        metrics,
        notes="time-to-detect / time-to-recover vs SWIM probing cadence",
    )


def test_failover_latency(benchmark):
    from _report import report

    rows, failures = benchmark.pedantic(
        lambda: run_sweep(FULL_SWEEP), rounds=1, iterations=1
    )
    assert not failures, failures
    report(
        "Failover: time-to-detect and time-to-recover vs SWIM probing "
        "cadence (TCP, kill-primary mid-soak)",
        rows, columns=COLUMNS, notes=NOTES,
    )
    _emit_bench(rows, smoke=False)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: the single default-cadence cell",
    )
    args = parser.parse_args(argv)

    cells = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    rows, failures = run_sweep(cells)
    _emit_bench(rows, smoke=args.smoke)
    for row in rows:
        print(row)
    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    if not args.smoke:
        from _report import report

        report(
            "Failover: time-to-detect and time-to-recover vs SWIM probing "
            "cadence (TCP, kill-primary mid-soak)",
            rows, columns=COLUMNS, notes=NOTES,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
