"""Instrumentation overhead on the simulated protocol hot path.

The repro.obs design rule is that hot paths keep their native int
counters (``ClientStats``, the kernel's ``events_processed``, the server
tallies) and the registry only reads them at scrape time through pull
collectors.  This bench makes that claim falsifiable: it runs the same
seeded Cluster workload twice — bare, and with every bridge collector
bound to a live Registry plus an end-of-run snapshot — and asserts the
instrumented run stays within the documented 5% overhead budget
(docs/OBSERVABILITY.md).

Runs two ways:

* ``pytest benchmarks/bench_obs_overhead.py`` — full bench, appends the
  table to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_obs_overhead.py [--smoke]`` — plain script
  for CI; ``--smoke`` shrinks the workload and relaxes the floor so the
  verdict survives noisy shared runners.
"""

import time

from repro.obs import (
    Registry,
    bind_client_stats,
    bind_sim_server,
    bind_simulator,
)
from repro.protocol import Cluster
from repro.workloads import uniform_workload

OBJECTS = [f"obj{i}" for i in range(8)]
OVERHEAD_BUDGET = 1.05  # the documented acceptance bound
SMOKE_BUDGET = 1.25  # noise-tolerant floor for shared CI runners


def run_once(n_ops, instrumented, seed=11):
    cluster = Cluster(
        n_clients=4, n_servers=2, variant="tsc", delta=0.5, seed=seed,
    )
    registry = None
    if instrumented:
        registry = Registry()
        bind_simulator(registry, cluster.sim)
        for server in cluster.servers:
            bind_sim_server(registry, server, node=str(server.node_id))
        for client in cluster.clients:
            bind_client_stats(
                registry, client.stats, site=str(client.node_id),
            )
    cluster.spawn(uniform_workload(OBJECTS, n_ops=n_ops))
    start = time.perf_counter()
    cluster.run()
    seconds = time.perf_counter() - start
    if instrumented:
        # Scraping happens off the hot path; do it after the clock stops
        # but make sure the collectors actually produced samples.
        snapshot = registry.snapshot()
        names = {f["name"] for f in snapshot["metrics"]}
        assert "repro_sim_events_total" in names
        assert "repro_client_ops_total" in names
    return seconds


def measure(n_ops, trials):
    """Best-of-N for each arm, alternating so thermal drift hits both."""
    bare = []
    instrumented = []
    for trial in range(trials):
        bare.append(run_once(n_ops, False, seed=11 + trial))
        instrumented.append(run_once(n_ops, True, seed=11 + trial))
    return min(bare), min(instrumented)


def rows_for(n_ops, trials):
    bare, inst = measure(n_ops, trials)
    return {
        "ops/client": n_ops,
        "bare_s": round(bare, 4),
        "instrumented_s": round(inst, 4),
        "overhead": round(inst / bare, 3),
    }


def test_obs_overhead(benchmark):
    from _report import report

    row = rows_for(n_ops=400, trials=5)
    report(
        "registry overhead on the simulated protocol hot path",
        [row],
        notes=(
            "pull-model collectors: the workload's counters stay native "
            f"ints; budget <= {OVERHEAD_BUDGET:.2f}x"
        ),
    )
    assert row["overhead"] <= OVERHEAD_BUDGET, row
    benchmark(run_once, 100, True)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload and a noise-tolerant floor for CI",
    )
    args = parser.parse_args(argv)
    n_ops, trials = (150, 3) if args.smoke else (400, 5)
    budget = SMOKE_BUDGET if args.smoke else OVERHEAD_BUDGET
    row = rows_for(n_ops, trials)
    print(
        f"bare={row['bare_s']:.4f}s instrumented={row['instrumented_s']:.4f}s "
        f"overhead={row['overhead']:.3f}x (budget {budget:.2f}x)"
    )
    if row["overhead"] > budget:
        raise SystemExit(f"instrumentation overhead above budget: {row}")


if __name__ == "__main__":
    main()
