"""The pre-engine server, frozen for the overhead baseline.

``bench_engine_overhead`` compares today's engine-backed
:class:`~repro.net.server.NetObjectServer` against the code it
replaced: the inline ``_execute`` handlers that lived in the server
class before the protocol logic moved into :mod:`repro.engine`.  This
module preserves those handlers verbatim (modulo state access: the
store, context and counters now live on the engine object, so the
frozen handlers reach through ``self.engine`` — the same attribute
loads the engine path performs).

Fairness notes:

* the reply-cache ``put`` moved from the dispatch loop into
  ``engine.execute``; the frozen ``_execute`` performs it itself, so
  both arms do one cache insertion per request;
* the dispatch loop, locking, framing, and propagation are shared —
  only the per-request protocol logic differs, which is exactly the
  code the refactor moved.

Not wired into anything but the bench; do not use it as a server.
"""

from typing import Any, Dict, List, Tuple

from repro.engine import version_payload
from repro.engine.effects import EngineResult
from repro.engine.versions import PhysicalVersion
from repro.net.framing import ERROR
from repro.net.server import NetObjectServer
from repro.protocol import messages


class LegacyInlineServer(NetObjectServer):
    """NetObjectServer with the pre-engine inline request handlers."""

    async def _execute(self, client_id: int, frame: Dict[str, Any]) -> EngineResult:
        kind = str(frame.get("kind"))
        reply, installed = await self._legacy_execute(client_id, frame, kind)
        key = self.engine.dedup_key(client_id, frame)
        if key is not None and reply.get("kind") != ERROR:
            self.engine.replies.put(key, reply)
        return EngineResult(reply, wal=list(installed), installed=list(installed))

    # -- the old handlers, verbatim --------------------------------------------

    async def _legacy_execute(
        self, client_id: int, frame: Dict[str, Any], kind: str
    ) -> Tuple[Dict[str, Any], List[PhysicalVersion]]:
        if kind == messages.FETCH:
            return await self._on_fetch(frame), []
        if kind == messages.VALIDATE:
            return await self._on_validate(frame), []
        if kind == messages.WRITE:
            return await self._on_write(client_id, frame)
        if kind == messages.WRITE_BATCH:
            return await self._on_write_batch(client_id, frame)
        if kind == messages.VALIDATE_BATCH:
            return await self._on_validate_batch(frame), []
        return {
            "kind": ERROR,
            "error": f"unknown message kind {kind!r}",
            "req": frame.get("req"),
        }, []

    def _current(self, obj: str) -> PhysicalVersion:
        e = self.engine
        if obj not in e.store:
            e.store[obj] = PhysicalVersion(
                obj, self.initial_value, alpha=0.0, omega=0.0, writer=-1
            )
        version = e.store[obj]
        if obj in e.recovered_old:
            e.recovered_old.discard(obj)
            e.revalidations += 1
            if self.durable is not None and self.durable.instruments is not None:
                self.durable.instruments.on_revalidation()
        version.advance_omega(self.engine.clock())
        return version

    async def _on_fetch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            self.engine.requests += 1
            version = self._current(str(frame["obj"])).copy()
        return {
            "kind": messages.VERSION, "req": frame.get("req"),
            **version_payload(version),
        }

    def _validate_result(self, obj: str, alpha: Any) -> Dict[str, Any]:
        version = self._current(obj)
        if version.alpha == alpha:
            return {
                "kind": messages.STILL_VALID, "obj": obj, "omega": version.omega,
            }
        return {"kind": messages.VERSION, **version_payload(version.copy())}

    async def _on_validate(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            self.engine.requests += 1
            reply = self._validate_result(str(frame["obj"]), frame.get("alpha"))
        reply["req"] = frame.get("req")
        return reply

    def _install(
        self, obj: str, value: Any, client_id: int
    ) -> PhysicalVersion:
        e = self.engine
        install_time = e.clock()
        version = PhysicalVersion(obj, value, install_time, install_time, client_id)
        current = e.store.get(obj)
        if current is None or install_time > current.alpha:
            e.store[obj] = version.copy()
            e.context = max(e.context, install_time)
            e.recovered_old.discard(obj)
            e.writes_installed += 1
        else:
            e.writes_discarded += 1
        return version

    async def _on_write(
        self, client_id: int, frame: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[PhysicalVersion]]:
        obj = str(frame["obj"])
        value = frame["value"]
        async with self._lock:
            self.engine.requests += 1
            version = self._install(obj, value, client_id)
            if self.durable is not None:
                self.durable.log_write(version)
                self.durable.maybe_snapshot(
                    self.engine.store, self.engine.context, version.alpha
                )
        reply = {
            "kind": messages.WRITE_ACK, "req": frame.get("req"),
            "obj": obj, "alpha": version.alpha,
        }
        return reply, [version]

    async def _on_write_batch(
        self, client_id: int, frame: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[PhysicalVersion]]:
        writes = frame.get("writes")
        if not isinstance(writes, list) or not writes:
            return {
                "kind": ERROR, "req": frame.get("req"),
                "error": "write-batch needs a non-empty 'writes' list",
            }, []
        self.engine.batch_frames += 1
        self.engine.batched_writes += len(writes)
        if self.pipeline is not None:
            self.pipeline.on_batch(len(writes))
        installed: List[PhysicalVersion] = []
        async with self._lock:
            self.engine.requests += len(writes)
            for item in writes:
                installed.append(
                    self._install(str(item["obj"]), item["value"], client_id)
                )
            if self.durable is not None:
                self.durable.log_writes(installed)
                self.durable.maybe_snapshot(
                    self.engine.store, self.engine.context, installed[-1].alpha
                )
        reply = {
            "kind": messages.WRITE_BATCH_ACK, "req": frame.get("req"),
            "acks": [{"obj": v.obj, "alpha": v.alpha} for v in installed],
        }
        return reply, installed

    async def _on_validate_batch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        items = frame.get("items")
        if not isinstance(items, list) or not items:
            return {
                "kind": ERROR, "req": frame.get("req"),
                "error": "validate-batch needs a non-empty 'items' list",
            }
        self.engine.batch_frames += 1
        if self.pipeline is not None:
            self.pipeline.on_batch(len(items))
        async with self._lock:
            self.engine.requests += len(items)
            results = [
                self._validate_result(str(item["obj"]), item.get("alpha"))
                for item in items
            ]
        return {
            "kind": messages.VALIDATE_BATCH_ACK, "req": frame.get("req"),
            "results": results,
        }
