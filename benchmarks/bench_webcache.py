"""Section 4: web cache consistency protocols as timed consistency.

Reproduced qualitative claims from the works the paper builds on:
* [19] (Gwertzman & Seltzer): TTL-based weak consistency cuts bandwidth
  and server load relative to polling; the adaptive (Alex) TTL keeps
  staleness low on heavy-tailed modification patterns;
* [10] (Cao & Liu): server-driven invalidation achieves strong
  consistency with server load *comparable to or below* weak consistency;
* the paper's own framing: each policy is a timed-consistency protocol —
  measured max staleness respects each policy's effective delta.
"""

from _report import report

from repro.analysis.metrics import staleness_report
from repro.webcache import (
    AdaptiveTTL,
    FixedTTL,
    PiggybackTTL,
    PollEveryTime,
    ServerInvalidation,
    run_web_experiment,
)

RTT_SLACK = 0.1


def run_policies(modification_model="exponential", seed=17):
    policies = [
        PollEveryTime(),
        FixedTTL(0.5),
        PiggybackTTL(0.5),
        FixedTTL(2.0),
        AdaptiveTTL(factor=0.2, min_ttl=0.05, max_ttl=10.0),
        ServerInvalidation(),
    ]
    rows = []
    for policy in policies:
        result = run_web_experiment(
            policy, n_caches=5, n_docs=20, requests_per_cache=150,
            modification_model=modification_model, seed=seed,
        )
        row = result.row()
        row["effective_delta"] = policy.effective_delta()
        rows.append(row)
    return rows


def test_webcache_protocols(benchmark):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    by_policy = {row["policy"]: row for row in rows}
    poll = by_policy["PollEveryTime"]
    ttl05 = by_policy["FixedTTL(0.5)"]
    piggy = by_policy["PiggybackTTL(0.5)"]
    ttl2 = by_policy["FixedTTL(2)"]
    inval = by_policy["ServerInvalidation"]

    # Piggyback validation: same bound as TTL(0.5), less server load.
    assert piggy["server_load"] < ttl05["server_load"]
    assert piggy["max_staleness"] <= 0.5 + RTT_SLACK

    # Staleness respects each policy's effective delta (+ 1 RTT).
    for row in rows:
        assert row["max_staleness"] <= row["effective_delta"] + RTT_SLACK, row

    # [19]: TTL reduces server load and bandwidth vs polling; bigger TTL
    # reduces more but gets staler.
    assert ttl05["server_load"] < poll["server_load"]
    assert ttl2["server_load"] < ttl05["server_load"]
    assert ttl2["bytes"] < poll["bytes"]
    assert ttl2["mean_staleness"] >= ttl05["mean_staleness"]

    # [10]: invalidation is strongly consistent AND cheap for the server.
    assert inval["max_staleness"] <= RTT_SLACK
    assert inval["server_load"] < poll["server_load"]

    report(
        "Section 4 — web cache consistency protocols (exponential "
        "modification model)",
        rows,
        columns=[
            "policy", "effective_delta", "hit_ratio", "server_load", "bytes",
            "mean_staleness", "max_staleness", "stale_frac",
        ],
        notes="Weak vs strong consistency is a choice of delta; measured "
        "staleness respects each policy's bound (+1 RTT).",
    )


def test_adaptive_ttl_shines_on_heavy_tails(benchmark):
    """The Alex protocol's bet: most documents that have been stable stay
    stable.  Under log-normal (heavy-tailed) modification intervals the
    adaptive TTL gets a better hit ratio per unit staleness than under
    memoryless modifications."""

    def run_both():
        return {
            model: {row["policy"]: row for row in run_policies(model)}
            for model in ("exponential", "lognormal")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    adaptive_exp = results["exponential"]["AdaptiveTTL(x0.2)"]
    adaptive_logn = results["lognormal"]["AdaptiveTTL(x0.2)"]
    assert adaptive_logn["hit_ratio"] > adaptive_exp["hit_ratio"]
    report(
        "Section 4 — adaptive TTL vs modification model",
        [
            {"model": "exponential", **{k: adaptive_exp[k] for k in
             ("hit_ratio", "server_load", "mean_staleness", "stale_frac")}},
            {"model": "lognormal", **{k: adaptive_logn[k] for k in
             ("hit_ratio", "server_load", "mean_staleness", "stale_frac")}},
        ],
        columns=["model", "hit_ratio", "server_load", "mean_staleness", "stale_frac"],
        notes="Heavy-tailed quiet periods reward age-based TTLs — the "
        "Alex-protocol result of Gwertzman & Seltzer [19].",
    )
