"""Section 5 claims: each lifetime protocol variant induces its criterion.

* rules 1-2 (physical) induce SC;
* rule 3 upgrades to TSC(delta): no read is late at delta + latency slack;
* the vector-clock variant induces CC;
* the checking-time (beta) variant induces TCC(delta).

Each verdict is computed on the protocol's recorded execution by the
independent checkers — protocol and checker share no code paths.
"""

import math

from _report import report

from repro.analysis.metrics import staleness_report, timedness_report
from repro.checkers import check_cc, check_sc
from repro.protocol import Cluster
from repro.workloads import uniform_workload

DELTA = 0.4
SLACK = 0.15  # write propagation + validation round trip upper bound


def run_variant(variant, delta, seed=31):
    cluster = Cluster(n_clients=4, n_servers=2, variant=variant, delta=delta, seed=seed)
    cluster.spawn(uniform_workload(["A", "B", "C"], n_ops=35, write_fraction=0.25))
    cluster.run()
    history = cluster.history()
    ordering_ok = (
        check_sc(history).satisfied
        if variant in ("sc", "tsc")
        else check_cc(history).satisfied
    )
    timed = timedness_report(history, DELTA + SLACK)
    return {
        "variant": variant,
        "criterion": "SC" if variant in ("sc", "tsc") else "CC",
        "ordering_ok": ordering_ok,
        "ops": len(history),
        "late_at_delta+slack": timed["late_reads"] if variant in ("tsc", "tcc") else "-",
        "max_staleness": round(staleness_report(history).maximum, 3),
    }


def run_all():
    return [
        run_variant("sc", math.inf),
        run_variant("tsc", DELTA),
        run_variant("cc", math.inf),
        run_variant("tcc", DELTA),
    ]


def test_protocol_induction(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for row in rows:
        assert row["ordering_ok"], f"{row['variant']} trace violates {row['criterion']}"
    for row in rows:
        if row["variant"] in ("tsc", "tcc"):
            assert row["late_at_delta+slack"] == 0
            assert row["max_staleness"] <= DELTA + SLACK
    report(
        "Section 5 — protocol variants induce their criteria "
        f"(delta = {DELTA}, slack = {SLACK})",
        rows,
        columns=[
            "variant", "criterion", "ordering_ok", "ops",
            "late_at_delta+slack", "max_staleness",
        ],
        notes="Timed variants must additionally keep every read on time "
        "within delta plus one protocol round trip.",
    )
