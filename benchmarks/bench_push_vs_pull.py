"""Push vs pull implementations of TCC (the paper's future work).

Conclusions: "Other possible implementations of TSC and TCC have to be
considered."  We compare two:

* **pull** — the Section 5 lifetime cache (reads validate on access;
  lossy networks are repaired by retransmission);
* **push** — a replicated store over delta-causal broadcast (writes are
  multicast with lifetime delta; reads are local; lost/late messages are
  *never* delivered, staleness persists until a newer write supersedes).

On a loss-free network both respect the delta bound; under loss the push
design's bound breaks (the paper's own observation about delta-causality)
while the pull design holds — at the price of per-read traffic.
"""

from _report import report

from repro.analysis.metrics import staleness_report
from repro.broadcast.replicated_store import run_replicated_store
from repro.checkers import check_cc
from repro.protocol import Cluster
from repro.sim.network import ConstantLatency
from repro.workloads import uniform_workload

DELTA = 0.25
SLACK = 0.1


def run_pull(drop, seed=9):
    cluster = Cluster(
        n_clients=4, n_servers=1, variant="tcc", delta=DELTA, seed=seed,
        latency=ConstantLatency(0.02),
        drop_probability=drop,
        retry_timeout=0.1 if drop else None,
    )
    cluster.spawn(uniform_workload(["obj0", "obj1", "obj2"], n_ops=25,
                                   write_fraction=0.3))
    cluster.run()
    history = cluster.history()
    stats = cluster.aggregate_stats()
    return {
        "design": "pull (Section 5 cache)",
        "loss": drop,
        "cc": check_cc(history).satisfied,
        "max_staleness": round(staleness_report(history).maximum, 4),
        "bound_held": staleness_report(history).maximum
        <= DELTA + SLACK + (3 * 0.1 if drop else 0),
        "msgs_per_read": round(stats.messages_per_read, 3),
    }


def run_push(drop, seed=9):
    result = run_replicated_store(
        DELTA, n_replicas=4, rounds=25, seed=seed,
        latency=ConstantLatency(0.02), drop_probability=drop,
        write_fraction=0.3,
    )
    history = result.history()
    stale = staleness_report(history)
    reads = len(history.reads)
    totals = result.totals()
    return {
        "design": "push (delta-causal bcast)",
        "loss": drop,
        "cc": check_cc(history).satisfied,
        "max_staleness": round(stale.maximum, 4),
        "bound_held": stale.maximum <= DELTA + SLACK,
        "msgs_per_read": round(totals["sent"] * 3 / reads, 3) if reads else 0.0,
    }


def run_matrix():
    rows = []
    for drop in (0.0, 0.25):
        rows.append(run_pull(drop))
        rows.append(run_push(drop))
    return rows


def test_push_vs_pull(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    by_key = {(row["design"].split()[0], row["loss"]): row for row in rows}
    for row in rows:
        assert row["cc"], row  # causal consistency survives everywhere
    # Loss-free: both designs hold the delta bound.
    assert by_key[("pull", 0.0)]["bound_held"]
    assert by_key[("push", 0.0)]["bound_held"]
    # Lossy: the pull design repairs itself (retries); push does not.
    assert by_key[("pull", 0.25)]["bound_held"]
    assert not by_key[("push", 0.25)]["bound_held"]
    # Reads are free in the push design, costly in the pull design.
    assert by_key[("push", 0.0)]["msgs_per_read"] < by_key[("pull", 0.0)][
        "msgs_per_read"
    ] * 3
    report(
        f"Future work — push vs pull TCC(delta={DELTA}) on reliable and "
        "25%-loss networks",
        rows,
        columns=["design", "loss", "cc", "max_staleness", "bound_held",
                 "msgs_per_read"],
        notes="Push replication gives free local reads and holds the bound "
        "only while nothing is lost — 'late messages are never delivered'; "
        "the pull caches repair staleness on access.",
    )
