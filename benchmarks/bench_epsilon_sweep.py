"""Section 3.2: approximately-synchronized clocks — the epsilon axis.

With drifting clocks re-synchronized so no two differ by more than
epsilon, the TSC protocol still induces SC, and timedness holds at
``delta + epsilon + latency`` (Definition 2's weakening: the observable
window shrinks by the clock precision).
"""

from _report import report

from repro.analysis.metrics import staleness_report, timedness_report
from repro.checkers import check_sc
from repro.protocol import Cluster
from repro.workloads import uniform_workload

DELTA = 0.4
SLACK = 0.15
EPSILONS = [0.0, 0.02, 0.05, 0.1]


def run_epsilon(epsilon, seed=17):
    cluster = Cluster(
        n_clients=4, n_servers=1, variant="tsc", delta=DELTA, seed=seed,
        epsilon=epsilon,
    )
    cluster.spawn(uniform_workload(["A", "B", "C"], n_ops=30, write_fraction=0.25))
    cluster.run()
    history = cluster.history()
    timed = timedness_report(history, DELTA + SLACK + epsilon)
    return {
        "epsilon": epsilon,
        "sc": check_sc(history).satisfied,
        "reads": timed["reads"],
        "late_at_delta+eps+slack": timed["late_reads"],
        "max_staleness": round(staleness_report(history).maximum, 4),
        "bound": DELTA + SLACK + epsilon,
    }


def run_sweep():
    return [run_epsilon(eps) for eps in EPSILONS]


def test_epsilon_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["sc"], f"epsilon={row['epsilon']}: trace not SC"
        assert row["late_at_delta+eps+slack"] == 0
        assert row["max_staleness"] <= row["bound"]
    report(
        f"Section 3.2 — TSC(delta={DELTA}) under clock precision epsilon",
        rows,
        columns=[
            "epsilon", "sc", "reads", "late_at_delta+eps+slack",
            "max_staleness", "bound",
        ],
        notes="The delta guarantee weakens by exactly the clock precision "
        "(Definition 2), never more.",
    )
