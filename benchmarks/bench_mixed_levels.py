"""Section 4 / [23]: multiple consistency levels in one system.

Kordale & Ahamad's technique (cited when the paper discusses gracefully
weakening consistency) lets different clients of the same servers run at
different levels.  Here three clients share one TSC deployment with
per-client deltas {0.1, 1.0, inf}: each client's freshness work and
measured staleness must track its own bound, while the global trace stays
sequentially consistent.
"""

import math

from _report import report

from repro.analysis.metrics import read_staleness
from repro.checkers import check_sc
from repro.protocol import Cluster
from repro.workloads import uniform_workload

DELTAS = [0.1, 1.0, math.inf]
SLACK = 0.15


def run_mixed(seed=8):
    cluster = Cluster(
        n_clients=3, n_servers=1, variant="tsc",
        per_client_delta=DELTAS, seed=seed,
    )
    cluster.spawn(uniform_workload(["A", "B"], n_ops=40, write_fraction=0.15))
    cluster.run()
    history = cluster.history()
    rows = []
    for client, delta in zip(cluster.clients, DELTAS):
        own_reads = [r for r in history.reads if r.site == client.node_id]
        max_stale = max((read_staleness(history, r) for r in own_reads), default=0.0)
        rows.append(
            {
                "client": client.node_id,
                "delta": delta,
                "validations": client.stats.validations,
                "hit_ratio": round(client.stats.hit_ratio, 3),
                "max_staleness": round(max_stale, 4),
                "bound": "-" if math.isinf(delta) else delta + SLACK,
            }
        )
    return rows, check_sc(history).satisfied


def test_mixed_consistency_levels(benchmark):
    rows, sc_ok = benchmark.pedantic(run_mixed, rounds=1, iterations=1)
    assert sc_ok
    strict, medium, untimed = rows
    assert strict["validations"] > medium["validations"] >= untimed["validations"]
    assert strict["max_staleness"] <= 0.1 + SLACK
    assert medium["max_staleness"] <= 1.0 + SLACK
    report(
        "Section 4 / [23] — three consistency levels against one deployment "
        "(global trace is SC)",
        rows,
        columns=["client", "delta", "validations", "hit_ratio",
                 "max_staleness", "bound"],
        notes="Each client pays for exactly the freshness it asked for; "
        "ordering remains a single global guarantee.",
    )
