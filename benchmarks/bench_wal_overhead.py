"""WAL overhead on the TCP write path, per fsync policy.

The store's design claim (docs/STORE.md) is that durability is cheap
where it matters: ``log-before-ack`` adds one buffered append to every
write, and the ``interval`` fsync policy amortizes the expensive part —
the fsync — across many writes.  This bench makes the claim falsifiable:
it drives the same sequential write workload through a real
:class:`~repro.net.server.NetObjectServer` four times — no store, and a
store under each fsync policy — and asserts the ``interval`` arm stays
within the documented 25% budget of the in-memory write path
(``always`` is reported, not budgeted: it pays a real fsync per write by
design).

Runs two ways:

* ``pytest benchmarks/bench_wal_overhead.py`` — full bench, appends the
  table to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_wal_overhead.py [--smoke]`` — plain script
  for CI; ``--smoke`` shrinks the workload and relaxes the budget so the
  verdict survives noisy shared runners.
"""

import asyncio
import tempfile
import time

from repro.net.client import NetCacheClient
from repro.net.server import NetObjectServer
from repro.store import DurableStore

OBJECTS = [f"obj{i}" for i in range(8)]
OVERHEAD_BUDGET = 1.25  # the issue's acceptance bound for fsync=interval
SMOKE_BUDGET = 1.60  # noise-tolerant floor for shared CI runners
ARMS = ("memory", "never", "interval", "always")


async def _drive(n_writes, store):
    server = NetObjectServer(propagation="none", store=store)
    await server.start()
    try:
        async with NetCacheClient(1, server.host, server.port) as client:
            start = time.perf_counter()
            for i in range(n_writes):
                await client.write(OBJECTS[i % len(OBJECTS)], i)
            return time.perf_counter() - start
    finally:
        await server.close()


def run_once(n_writes, arm):
    """Seconds for one sequential write run under one durability arm."""
    if arm == "memory":
        return asyncio.run(_drive(n_writes, None))
    with tempfile.TemporaryDirectory(prefix=f"walbench-{arm}-") as root:
        store = DurableStore(root, fsync=arm)
        return asyncio.run(_drive(n_writes, store))


def measure(n_writes, trials):
    """Best-of-N per arm, interleaved so drift hits every arm equally."""
    best = {arm: float("inf") for arm in ARMS}
    for _ in range(trials):
        for arm in ARMS:
            best[arm] = min(best[arm], run_once(n_writes, arm))
    return best


def rows_for(n_writes, trials):
    best = measure(n_writes, trials)
    baseline = best["memory"]
    return [
        {
            "arm": arm,
            "seconds": round(best[arm], 4),
            "writes/s": round(n_writes / best[arm], 1),
            "vs_memory": round(best[arm] / baseline, 3),
        }
        for arm in ARMS
    ]


def _overhead(rows, arm):
    return next(r["vs_memory"] for r in rows if r["arm"] == arm)


def test_wal_overhead(benchmark):
    from _report import report

    rows = rows_for(n_writes=300, trials=3)
    report(
        "WAL overhead on the TCP write path (log-before-ack)",
        rows,
        notes=(
            "one buffered append per acked write; budget: fsync=interval "
            f"<= {OVERHEAD_BUDGET:.2f}x the in-memory path"
        ),
    )
    assert _overhead(rows, "interval") <= OVERHEAD_BUDGET, rows
    benchmark(run_once, 50, "interval")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload and a noise-tolerant budget for CI",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="also append the table to latest_results.txt",
    )
    args = parser.parse_args(argv)
    n_writes, trials = (100, 2) if args.smoke else (300, 3)
    budget = SMOKE_BUDGET if args.smoke else OVERHEAD_BUDGET
    rows = rows_for(n_writes, trials)
    if args.report:
        from _report import report

        report(
            "WAL overhead on the TCP write path (log-before-ack)",
            rows,
            notes=f"--smoke={args.smoke}; budget fsync=interval <= {budget:.2f}x",
        )
    for row in rows:
        print(
            f"{row['arm']:>9}: {row['seconds']:.4f}s "
            f"({row['writes/s']:.0f} writes/s, {row['vs_memory']:.3f}x)"
        )
    overhead = _overhead(rows, "interval")
    if overhead > budget:
        raise SystemExit(
            f"fsync=interval overhead {overhead:.3f}x above budget "
            f"{budget:.2f}x: {rows}"
        )
    print(f"OK: fsync=interval {overhead:.3f}x <= budget {budget:.2f}x")


if __name__ == "__main__":
    main()
