"""Latency vs delta over the real TCP cluster (``repro.net``).

The live sibling of ``bench_delta_cost_tradeoff`` / ``bench_push_vs_pull``:
the same Section 6 trade-off — tighter delta means fresher reads and more
validation traffic — measured against real sockets, real scheduling
jitter, and clock skew corrected by the NTP-style sync layer, instead of
the deterministic simulator.

Quantitative numbers here are machine-dependent (localhost RTT, event
loop load), so assertions are *ordinal*: the hit ratio must not fall as
delta loosens, per-read message cost must not rise, and every recorded
trace must satisfy TSC at its own delta with the measured epsilon.
"""

import math

from _report import report

from repro.analysis.metrics import staleness_report
from repro.net.demo import run_random_net_workload

DELTAS = [0.05, 0.5, math.inf]
ROUNDS = 18
CLIENTS = 3


def run_one(delta):
    result = run_random_net_workload(
        n_clients=CLIENTS, delta=delta, rounds=ROUNDS,
        objects=("x", "y"), write_fraction=0.25, think=0.004,
        skew=0.05, seed=23,
    )
    totals = result.totals()
    stale = staleness_report(result.history)
    return {
        "delta": delta,
        "hit_ratio": round(totals.hit_ratio, 3),
        "msgs_per_read": round(totals.messages_per_read, 3),
        "validations": totals.validations,
        "mean_read_ms": round(1000 * totals.mean_read_latency, 3),
        "max_staleness": round(stale.maximum, 4),
        "epsilon": round(result.epsilon, 6),
        "tsc": result.tsc.satisfied,
        "sc": result.sc.satisfied,
    }


def run_sweep():
    return [run_one(delta) for delta in DELTAS]


def test_net_delta_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    by_delta = {row["delta"]: row for row in rows}
    for row in rows:
        # The protocol honors its own bound on a real network: every
        # trace is TSC at the delta it ran with (epsilon from clock sync).
        assert row["tsc"], row
        assert row["sc"], row
    # Ordinal trends survive wall-clock jitter: loosening delta never
    # costs cache hits and never adds validation traffic.
    assert by_delta[math.inf]["hit_ratio"] >= by_delta[0.05]["hit_ratio"]
    assert by_delta[math.inf]["msgs_per_read"] <= by_delta[0.05]["msgs_per_read"]
    report(
        "Section 6 live — latency vs delta on a real TCP cluster "
        f"({CLIENTS} clients, skew ±50ms corrected by clock sync)",
        rows,
        columns=["delta", "hit_ratio", "msgs_per_read", "validations",
                 "mean_read_ms", "max_staleness", "epsilon", "tsc"],
        notes="Same trade-off as the simulator sweep, over real sockets: "
        "tight delta buys freshness with validation round trips; "
        "delta=inf is the plain SC cache.  Every trace passes TSC at its "
        "own delta with the epsilon the sync layer reports.",
    )
