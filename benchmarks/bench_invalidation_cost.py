"""Section 5.3 claim: invalidation cost ordering CC <= TCC <= TSC.

"Under the same circumstances, this implementation of TCC tends to
invalidate more objects than the implementation of CC presented in [39],
but less than the implementation of TSC described in Section 5.2."

We measure *freshness work* — validations plus entries demoted by the
Context rules — for the three protocols on the same workload and seeds.
"""

from _report import report

from repro.analysis.sweep import variant_comparison
from repro.workloads import read_heavy_hotspot

DELTA = 0.3


def run_comparison(seed):
    rows = variant_comparison(
        lambda: read_heavy_hotspot(n_ops=120, mean_think_time=0.08, write_fraction=0.08),
        delta=DELTA,
        n_clients=6,
        seed=seed,
    )
    for row in rows:
        row["freshness_work"] = (
            row["validations"] + row["invalidations"] + row["marked_old"]
        )
    return rows


def test_invalidation_cost_ordering(benchmark):
    rows = benchmark.pedantic(run_comparison, args=(11,), rounds=1, iterations=1)
    by_variant = {row["variant"]: row for row in rows}
    cc = by_variant["cc"]["freshness_work"]
    tcc = by_variant["tcc"]["freshness_work"]
    tsc = by_variant["tsc"]["freshness_work"]
    assert cc <= tcc <= tsc, f"expected CC <= TCC <= TSC, got {cc}, {tcc}, {tsc}"
    report(
        f"Section 5.3 — freshness work at delta = {DELTA} "
        "(validations + invalidations + mark-old)",
        [
            {
                "variant": row["variant"],
                "validations": row["validations"],
                "invalidations": row["invalidations"],
                "marked_old": row["marked_old"],
                "freshness_work": row["freshness_work"],
                "hit_ratio": row["hit_ratio"],
            }
            for row in rows
        ],
        columns=[
            "variant", "validations", "invalidations", "marked_old",
            "freshness_work", "hit_ratio",
        ],
        notes="Paper's ordering: CC <= TCC <= TSC.  SC shown for context.",
    )


def test_ordering_stable_across_seeds(benchmark):
    def across_seeds():
        verdicts = []
        for seed in (3, 11, 42):
            rows = run_comparison(seed)
            by_variant = {row["variant"]: row["freshness_work"] for row in rows}
            verdicts.append(
                by_variant["cc"] <= by_variant["tcc"] <= by_variant["tsc"]
            )
        return verdicts

    verdicts = benchmark.pedantic(across_seeds, rounds=1, iterations=1)
    assert all(verdicts)
