"""Scaling of the serialization-search engine across history lengths.

PR 2 rewrote :mod:`repro.checkers.search` as an explicit-stack iterative
engine with per-object candidate indexing.  This bench sweeps history
length 10^2..10^4 and demonstrates the two properties the rewrite bought:

* histories past ~1000 operations check at the default recursion limit
  (the recursive reference engine dies with ``RecursionError`` there);
* at n=2000 the iterative engine is >= 5x faster in wall time than the
  recursive reference (which rescans every operation at every state).

Runs two ways:

* ``pytest benchmarks/bench_checker_scaling.py`` — full bench, appends
  the table to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_checker_scaling.py [--smoke]`` — plain
  script for CI (no pytest-benchmark dependency); ``--smoke`` shrinks
  the sweep so the job stays fast, while still exercising a 5000-op
  history and the speedup floor.
"""

import sys
import time

from repro.checkers import (
    SearchStats,
    find_serialization,
    find_serialization_recursive,
    find_site_ordered_serialization,
    restrict_edges,
)
from repro.workloads import random_linearizable_history

import random

COMPARE_AT = 2000  # history length of the iterative-vs-recursive race
SPEEDUP_FLOOR = 5.0  # acceptance floor for the full bench
SMOKE_SPEEDUP_FLOOR = 2.0  # noise-tolerant floor for shared CI runners


def make_history(n_ops, seed=7):
    rng = random.Random(seed)
    return random_linearizable_history(
        rng, n_sites=6, n_objects=10, n_ops=n_ops
    )


def general_inputs(history):
    ops = list(history.operations)
    preds = restrict_edges(history.immediate_program_order(), ops)
    return ops, preds


def time_iterative(history):
    ops, preds = general_inputs(history)
    stats = SearchStats()
    start = time.perf_counter()
    witness = find_serialization(
        ops, preds, history.initial_value, stats=stats
    )
    seconds = time.perf_counter() - start
    assert witness is not None
    return seconds, stats


def time_recursive(history):
    ops, preds = general_inputs(history)
    # The reference engine recurses once per operation; give it room so
    # we measure time, not the RecursionError this bench exists to kill.
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, len(ops) + 2000))
    try:
        stats = SearchStats()
        start = time.perf_counter()
        witness = find_serialization_recursive(
            ops, preds, history.initial_value, stats=stats
        )
        seconds = time.perf_counter() - start
    finally:
        sys.setrecursionlimit(limit)
    assert witness is not None
    return seconds, stats


def run_sweep(lengths, compare_at=COMPARE_AT):
    rows = []
    speedup = None
    for n in lengths:
        history = make_history(n)
        seconds, stats = time_iterative(history)
        row = {
            "ops": n,
            "iterative_ms": round(seconds * 1000, 1),
            "states": stats.states,
            "states_per_sec": (
                int(stats.states / seconds) if seconds > 0 else 0
            ),
            "recursive_ms": "-",
            "speedup": "-",
        }
        if n == compare_at:
            rec_seconds, _ = time_recursive(history)
            speedup = rec_seconds / seconds if seconds > 0 else float("inf")
            row["recursive_ms"] = round(rec_seconds * 1000, 1)
            row["speedup"] = f"{speedup:.1f}x"
        rows.append(row)
    return rows, speedup


def run_site_ordered_probe(n=10000):
    """The site-ordered entry point at net-cluster scale."""
    history = make_history(n)
    sequences = {s: history.site_ops(s) for s in history.sites}
    stats = SearchStats()
    start = time.perf_counter()
    witness = find_site_ordered_serialization(
        sequences, history.initial_value, stats=stats
    )
    seconds = time.perf_counter() - start
    assert witness is not None
    return seconds, stats


NOTES = (
    "Iterative explicit-stack engine (PR 2) vs the recursive reference "
    "(search_reference.py).  The recursive engine needs a raised "
    "recursion limit above ~1000 ops; the iterative engine runs at the "
    "default limit at every size."
)


def test_checker_scaling(benchmark):
    from _report import report

    lengths = (100, 316, 1000, 2000, 3162, 10000)

    def run_all():
        rows, speedup = run_sweep(lengths)
        probe_seconds, probe_stats = run_site_ordered_probe()
        rows.append({
            "ops": "10000 (site-ordered)",
            "iterative_ms": round(probe_seconds * 1000, 1),
            "states": probe_stats.states,
            "states_per_sec": int(probe_stats.states / probe_seconds),
            "recursive_ms": "-",
            "speedup": "-",
        })
        return rows, speedup

    rows, speedup = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert speedup is not None and speedup >= SPEEDUP_FLOOR, (
        f"iterative engine only {speedup:.1f}x faster at n={COMPARE_AT}"
    )
    report(
        "Serialization-search engine scaling (iterative vs recursive "
        "reference)",
        rows,
        columns=["ops", "iterative_ms", "recursive_ms", "speedup",
                 "states", "states_per_sec"],
        notes=NOTES,
    )


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI sweep: fewer sizes, relaxed speedup floor",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        lengths = (100, 1000, 2000)
        floor = SMOKE_SPEEDUP_FLOOR
        probe_n = 5000
    else:
        lengths = (100, 316, 1000, 2000, 3162, 10000)
        floor = SPEEDUP_FLOOR
        probe_n = 10000

    rows, speedup = run_sweep(lengths)
    probe_seconds, probe_stats = run_site_ordered_probe(probe_n)

    for row in rows:
        print(row)
    print(f"site-ordered n={probe_n}: {probe_seconds * 1000:.1f}ms, "
          f"{probe_stats.states} states "
          f"(recursion limit {sys.getrecursionlimit()})")
    print(f"speedup at n={COMPARE_AT}: {speedup:.1f}x (floor {floor}x)")

    if speedup < floor:
        print("FAIL: speedup below floor", file=sys.stderr)
        return 1
    if not args.smoke:
        from _report import report

        rows.append({
            "ops": f"{probe_n} (site-ordered)",
            "iterative_ms": round(probe_seconds * 1000, 1),
            "states": probe_stats.states,
            "states_per_sec": int(probe_stats.states / probe_seconds),
            "recursive_ms": "-",
            "speedup": "-",
        })
        report(
            "Serialization-search engine scaling (iterative vs recursive "
            "reference)",
            rows,
            columns=["ops", "iterative_ms", "recursive_ms", "speedup",
                     "states", "states_per_sec"],
            notes=NOTES,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
