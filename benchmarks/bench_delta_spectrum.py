"""Figure 4(b): varying delta interpolates between LIN and SC.

For each paper execution we sweep delta from 0 to infinity and confirm:
* TSC(0) == LIN and TSC(inf) == SC (the two endpoints of the figure);
* satisfaction is monotone in delta with a single threshold delta*.
"""

import math

from _report import report

from repro.checkers import check_lin, check_sc, check_tsc, tsc_threshold
from repro.paperdata import figure1, figure5, figure6

EXECUTIONS = [("Figure 1", figure1), ("Figure 5", figure5), ("Figure 6", figure6)]


def sweep_execution(history):
    thr = tsc_threshold(history)
    grid = [0.0]
    if math.isfinite(thr) and thr > 0:
        grid += [thr / 2, thr * 0.999, thr, thr * 2]
    grid.append(math.inf)
    return {
        "lin": check_lin(history).satisfied,
        "sc": check_sc(history).satisfied,
        "threshold": thr,
        "sweep": {delta: check_tsc(history, delta).satisfied for delta in grid},
    }


def run_all():
    return {name: sweep_execution(factory()) for name, factory in EXECUTIONS}


def test_delta_spectrum(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        sweep = result["sweep"]
        # Endpoint identities.
        assert sweep[0.0] == result["lin"], f"{name}: TSC(0) != LIN"
        assert sweep[math.inf] == result["sc"], f"{name}: TSC(inf) != SC"
        # Monotone with a single threshold.
        verdicts = [sweep[d] for d in sorted(sweep)]
        first_true = verdicts.index(True) if True in verdicts else len(verdicts)
        assert all(verdicts[first_true:])
        rows.append(
            {
                "execution": name,
                "LIN=TSC(0)": sweep[0.0],
                "delta*": result["threshold"],
                "TSC(delta*)": sweep.get(result["threshold"], result["sc"]),
                "SC=TSC(inf)": sweep[math.inf],
            }
        )
    report(
        "Figure 4(b) — the delta spectrum: LIN (delta=0) ... SC (delta=inf)",
        rows,
        columns=["execution", "LIN=TSC(0)", "delta*", "TSC(delta*)", "SC=TSC(inf)"],
        notes="delta* = inf for Figure 6: it is not SC, so no delta makes it TSC.",
    )
