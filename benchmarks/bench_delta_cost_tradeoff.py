"""Section 6: the delta-vs-cost trade-off (the paper's announced simulation).

"Small values of delta require more communications overhead ... (in
extreme cases, local caches become useless), while large values of delta
require less expensive methods but reduce the timeliness of the
information."

Asserted shape: as delta grows, messages-per-read falls monotonically-ish
(we allow small noise), hit ratio rises, and staleness rises; the SC
baseline (delta = inf) is the limit of the curve.
"""

from _report import report

from repro.analysis.sweep import delta_cost_sweep
from repro.workloads import read_heavy_hotspot

DELTAS = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0]


def run_sweep():
    return delta_cost_sweep(
        DELTAS,
        lambda: read_heavy_hotspot(n_ops=120, mean_think_time=0.08, write_fraction=0.08),
        n_clients=6,
        seed=11,
    )


def test_delta_cost_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    timed_rows, sc_row = rows[:-1], rows[-1]
    hit = [row["hit_ratio"] for row in timed_rows]
    msgs = [row["msgs_per_read"] for row in timed_rows]
    stale = [row["mean_staleness"] for row in timed_rows]

    # Endpoint comparisons (the robust shape claims).
    assert hit[0] < hit[-1] <= sc_row["hit_ratio"] + 0.02
    assert msgs[0] > msgs[-1] >= sc_row["msgs_per_read"] - 0.02
    assert stale[0] < stale[-1] <= sc_row["mean_staleness"] + 1e-9
    # Monotone trends up to small noise.
    for a, b in zip(hit, hit[1:]):
        assert b >= a - 0.03
    for a, b in zip(msgs, msgs[1:]):
        assert b <= a + 0.06
    # Staleness is bounded by delta + round trip at every point.
    for row in timed_rows:
        assert row["max_staleness"] <= row["delta"] + 0.15

    from repro.analysis import dual_chart

    chart = dual_chart(
        rows, label="delta", left="msgs_per_read", right="mean_staleness"
    )
    report(
        "Section 6 — delta vs cost on the TSC protocol "
        "(last row: untimed SC baseline)",
        rows,
        columns=[
            "variant", "delta", "hit_ratio", "msgs_per_read", "validations",
            "mean_staleness", "max_staleness", "stale_frac",
        ],
        notes="delta -> 0 approaches LIN (caches useless); "
        "delta -> inf approaches SC (cheap but stale): Figure 4b as cost.\n"
        + chart,
    )
