"""Benchmark-suite fixtures: reset the persisted results file once."""

import pytest

from _report import reset_results


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    reset_results()
    yield
