"""Section 4: delta-causal broadcast [7, 8] vs timed consistency.

The paper: "[Baldoni et al.'s] protocol supports multimedia real-time
collaborative applications ... their approach is slightly different than
the one expressed in Definition 3 because late messages are never
delivered, and it is assumed that a more updated message will eventually
be received."

Measured here, on the same lossy jittery network:
* delivered messages never violate causal order (0 violations);
* delivery latency is hard-bounded by delta (late messages are dropped,
  not delivered);
* the delivery ratio grows with delta — the messaging-domain version of
  the Figure 4(b) trade-off (freshness vs completeness instead of
  freshness vs communication cost).
"""

from _report import report

from repro.broadcast import run_broadcast_experiment

DELTAS = [0.02, 0.05, 0.1, 0.25, 1.0]
DROP = 0.05


def run_sweep():
    return [
        run_broadcast_experiment(
            delta,
            n_processes=5,
            messages_per_process=40,
            seed=4,
            drop_probability=DROP,
        )
        for delta in DELTAS
    ]


def test_delta_causal_broadcast(benchmark):
    experiments = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [exp.row() for exp in experiments]

    for exp in experiments:
        assert exp.violations == 0
        # Hard real-time guarantee: nothing older than delta is delivered.
        assert all(lat <= exp.delta + 1e-9 for lat in exp.latencies)
    ratios = [exp.delivery_ratio for exp in experiments]
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))
    # Small delta discards aggressively; large delta delivers ~everything
    # the network did not drop.
    assert rows[0]["discarded_late"] > rows[-1]["discarded_late"]
    assert ratios[-1] >= 0.9

    report(
        f"Section 4 — delta-causal broadcast on a lossy network "
        f"(drop={DROP:.0%}, log-normal latency)",
        rows,
        columns=[
            "delta", "sent", "delivered", "delivery_ratio", "discarded_late",
            "expired_preds", "mean_latency", "max_latency", "causal_violations",
        ],
        notes="Late messages are dropped (hard latency bound = delta) — "
        "where the paper's TCC would instead refresh the late value.  "
        "Delivery ratio vs freshness is Figure 4(b) in the messaging domain.",
    )
