"""Ablation (DESIGN.md decision 4): invalidate vs mark-old vs push.

Section 5.2: rule 3 "may generate unnecessary invalidations"; the
optimization marks versions *old* and validates on access with an
if-modified-since exchange, "which avoids the unnecessary sending of
large objects"; alternatively "an asynchronous component ... may update
old versions ... before they are accessed" (push).

Measured: bytes on the wire and hit ratio per policy, same workload/seed.
"""

from _report import report

from repro.analysis.sweep import policy_comparison
from repro.workloads import read_heavy_hotspot

DELTA = 0.3


def run_policies():
    return policy_comparison(
        lambda: read_heavy_hotspot(n_ops=120, mean_think_time=0.08,
                                   write_fraction=0.08),
        variant="tsc",
        delta=DELTA,
        n_clients=6,
        seed=11,
    )


def test_staleness_policies(benchmark):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    by_policy = {row["policy"]: row for row in rows}
    invalidate = by_policy["invalidate"]
    mark_old = by_policy["mark-old"]

    # Mark-old converts full refetches into cheap validations: fewer bytes.
    assert mark_old["bytes"] < invalidate["bytes"]
    assert mark_old["fetches"] <= invalidate["fetches"]
    # All policies keep the delta staleness bound.
    for row in rows:
        assert row["max_staleness"] <= DELTA + 0.15, row["policy"]

    report(
        f"Section 5.2 ablation — staleness handling policies (TSC, delta={DELTA})",
        [
            {
                "policy": row["policy"],
                "bytes": row["bytes"],
                "messages": row["messages"],
                "fetches": row["fetches"],
                "validations": row["validations"],
                "hit_ratio": row["hit_ratio"],
                "max_staleness": row["max_staleness"],
            }
            for row in rows
        ],
        columns=["policy", "bytes", "messages", "fetches", "validations",
                 "hit_ratio", "max_staleness"],
        notes="Mark-old (if-modified-since) avoids shipping large objects; "
        "push trades upstream bandwidth for fresher caches.",
    )
