"""Throughput and delta-violation rate of the ring-routed TCP cluster
as the deployment scales across ``n_servers x replication factor``.

Every cell of the sweep runs a real localhost cluster through
:func:`repro.net.ring_demo.ring_cluster` — servers with skewed clocks,
ring-routed replicated clients — and every recorded trace is
checker-verified (TSC at the configured delta with the composed
epsilon) before its numbers are admitted to the table.  That keeps the
bench honest: a configuration that trades consistency for throughput
would fail the run, not pad the table.

Runs two ways:

* ``pytest benchmarks/bench_ring_scaling.py`` — full sweep, appends the
  table to ``latest_results.txt`` via the shared reporter;
* ``python benchmarks/bench_ring_scaling.py [--smoke]`` — plain script
  for CI; ``--smoke`` shrinks the sweep to two cells (single-server
  baseline and the acceptance 3x2 configuration).
"""

import sys
import time

from repro.net.ring_demo import run_ring_soak

DELTA = 0.4
ROUNDS = 25  # operations per client per cell
CLIENTS = 2

#: (n_servers, replicas) cells of the full sweep.
FULL_SWEEP = ((1, 1), (2, 1), (3, 1), (3, 2), (4, 2), (5, 3))
SMOKE_SWEEP = ((1, 1), (3, 2))


def run_cell(n_servers, replicas, rounds=ROUNDS, seed=7):
    start = time.perf_counter()
    report = run_ring_soak(
        n_servers=n_servers, replicas=replicas, n_clients=CLIENTS,
        rounds=rounds, delta=DELTA, seed=seed,
    )
    wall = time.perf_counter() - start
    total_ops = sum(
        s.reads + s.writes for s in report.router_stats.values()
    )
    row = {
        "servers": n_servers,
        "replicas": replicas,
        "ops": total_ops,
        "ops_per_sec": int(total_ops / wall) if wall > 0 else 0,
        "wall_s": round(wall, 2),
        "epsilon_ms": round(report.epsilon * 1000, 3),
        "late_reads": len(report.late_reads),
        "violation_rate": round(
            len(report.late_reads) / max(len(report.verdicts), 1), 3
        ),
        "off_ring": report.off_ring_reads,
        "tsc": "ok" if report.tsc.satisfied else "VIOLATED",
    }
    return row, report


def run_sweep(cells, rounds=ROUNDS):
    rows = []
    failures = []
    for n_servers, replicas in cells:
        row, report = run_cell(n_servers, replicas, rounds=rounds)
        rows.append(row)
        if not report.tsc.satisfied:
            failures.append(
                f"{n_servers}x{replicas}: {report.tsc.violation}"
            )
        if report.off_ring_reads:
            failures.append(
                f"{n_servers}x{replicas}: {report.off_ring_reads} "
                "off-ring reads"
            )
    return rows, failures


NOTES = (
    "Real localhost TCP clusters (repro.net.ring_demo): N servers with "
    f"skewed clocks, {CLIENTS} ring-routed clients, full-N write "
    f"fan-out, primary-first reads, delta={DELTA}.  Every cell's "
    "recorded trace passed check_tsc at the composed epsilon; "
    "violation_rate counts online-monitor late reads (0 = every read "
    "within delta)."
)

COLUMNS = [
    "servers", "replicas", "ops", "ops_per_sec", "wall_s",
    "epsilon_ms", "late_reads", "violation_rate", "off_ring", "tsc",
]


def test_ring_scaling(benchmark):
    from _report import report

    rows, failures = benchmark.pedantic(
        lambda: run_sweep(FULL_SWEEP), rounds=1, iterations=1
    )
    assert not failures, failures
    report(
        "Ring scaling: throughput and delta-violation rate vs "
        "n_servers x replication factor (TCP, checker-verified)",
        rows, columns=COLUMNS, notes=NOTES,
    )


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI sweep: baseline and the 3x2 acceptance cell",
    )
    args = parser.parse_args(argv)

    cells = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    rounds = 12 if args.smoke else ROUNDS
    rows, failures = run_sweep(cells, rounds=rounds)
    for row in rows:
        print(row)
    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    if not args.smoke:
        from _report import report

        report(
            "Ring scaling: throughput and delta-violation rate vs "
            "n_servers x replication factor (TCP, checker-verified)",
            rows, columns=COLUMNS, notes=NOTES,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
