"""Figures 2-3: one read under Definition 1 vs Definition 2.

Paper claims reproduced here:
* with perfect clocks the read misses exactly {w2, w3} (not on time);
* with epsilon-synchronized clocks (the figure's epsilon) W_r is empty
  (on time) — the window shrank by 2 * epsilon.
"""

from _report import report

from repro.core.timed import w_r_set
from repro.paperdata import figures2_3


def evaluate_scenario():
    scenario = figures2_3()
    r = scenario.the_read
    return {
        "def1": sorted(w.value for w in w_r_set(scenario.history, r, scenario.delta)),
        "def2": sorted(
            w.value
            for w in w_r_set(scenario.history, r, scenario.delta, scenario.epsilon)
        ),
        "delta": scenario.delta,
        "epsilon": scenario.epsilon,
    }


def test_reading_on_time(benchmark):
    result = benchmark(evaluate_scenario)
    assert result["def1"] == ["v2", "v3"]
    assert result["def2"] == []
    report(
        "Figures 2-3 — W_r under perfect vs epsilon-synchronized clocks",
        [
            {
                "definition": "1 (perfect clocks)",
                "W_r (paper)": "{w2, w3} -> not on time",
                "W_r (measured)": str(result["def1"]),
            },
            {
                "definition": f"2 (epsilon={result['epsilon']:g})",
                "W_r (paper)": "{} -> on time",
                "W_r (measured)": str(result["def2"]),
            },
        ],
        columns=["definition", "W_r (paper)", "W_r (measured)"],
        notes="The Definition-2 window is 2*epsilon shorter, exactly as Figure 3 shows.",
    )


def test_epsilon_window_shrinks_linearly(benchmark):
    """Sweep epsilon and watch |W_r| drop: 2 -> 1 -> 0."""

    def sweep():
        scenario = figures2_3()
        r = scenario.the_read
        return {
            eps: len(w_r_set(scenario.history, r, scenario.delta, eps))
            for eps in (0.0, 10.0, 25.0, 40.0, 60.0)
        }

    sizes = benchmark(sweep)
    assert sizes[0.0] == 2 and sizes[25.0] == 1 and sizes[40.0] == 0
    report(
        "Figures 2-3 — |W_r| as epsilon grows (delta fixed at 40)",
        [{"epsilon": eps, "|W_r|": n} for eps, n in sizes.items()],
        columns=["epsilon", "|W_r|"],
    )
