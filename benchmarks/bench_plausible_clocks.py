"""Section 5.3: plausible clocks in the causal lifetime protocol.

The paper allows the CC/TCC timestamps to come "from vector clocks or
from plausible clocks [37]".  A plausible clock is constant-size but may
order concurrent events; in the protocol that shows up as *extra*
conservative invalidations (false "causally before" verdicts), while the
opposite error — folding hiding a genuine supersession — could in
principle cost causal consistency.  This bench measures both effects as a
function of the REV clock's entry count:

* freshness work vs timestamp size (precision costs messages);
* the empirical CC-violation rate over many seeded runs (expected ~0).
"""

from _report import report

from repro.checkers import check_cc
from repro.protocol import Cluster
from repro.workloads import uniform_workload

SEEDS = range(6)


def run_config(causal_clock, rev_entries, n_clients=4):
    cc_ok = 0
    freshness = 0
    reads = 0
    for seed in SEEDS:
        cluster = Cluster(
            n_clients=n_clients, n_servers=2, variant="cc", seed=seed,
            causal_clock=causal_clock, rev_entries=rev_entries,
        )
        cluster.spawn(uniform_workload(["A", "B", "C"], n_ops=25,
                                       write_fraction=0.3))
        cluster.run()
        if check_cc(cluster.history()).satisfied:
            cc_ok += 1
        stats = cluster.aggregate_stats()
        freshness += stats.validations + stats.invalidations + stats.marked_old
        reads += stats.reads
    return {
        "clock": "vector" if causal_clock == "vector" else f"REV(r={rev_entries})",
        "timestamp_entries": n_clients if causal_clock == "vector" else rev_entries,
        "cc_ok_runs": f"{cc_ok}/{len(list(SEEDS))}",
        "cc_violation_rate": 1.0 - cc_ok / len(list(SEEDS)),
        "freshness_work": freshness,
        "freshness_per_read": round(freshness / reads, 3),
    }


def run_all():
    rows = [run_config("vector", 4)]
    for r in (4, 2, 1):
        rows.append(run_config("rev", r))
    return rows


def test_plausible_clock_protocol(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    vector_row = rows[0]
    assert vector_row["cc_violation_rate"] == 0.0  # exact clocks: always CC
    # Folding errs in both directions: extra plausible orderings add
    # conservative invalidations, while collapsed entries can hide
    # staleness (fewer validations, approximate CC).  We assert only that
    # the approximation stays usable: the violation rate never explodes.
    for row in rows[1:]:
        assert row["cc_violation_rate"] <= 0.5, row
    report(
        "Section 5.3 — vector vs plausible (REV) clocks in the CC protocol",
        rows,
        columns=[
            "clock", "timestamp_entries", "cc_ok_runs", "cc_violation_rate",
            "freshness_work", "freshness_per_read",
        ],
        notes="Constant-size timestamps make CC approximate: folding adds "
        "conservative invalidations (slot tie-breaks) but can also hide "
        "staleness (r=1 does less freshness work than exact clocks).",
    )
