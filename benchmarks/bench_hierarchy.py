"""Figure 4(a): the consistency hierarchy, checked empirically.

A census over generated executions of all four families (LIN / SC-only /
CC-only / unconstrained): every execution must land in a region consistent
with ``LIN ⊆ TSC ⊆ SC ⊆ CC``, ``TCC ⊆ CC`` and ``TSC = TCC ∩ SC``.  The
bench reports the region counts and asserts zero hierarchy violations.
"""

import random

from _report import report

from repro.checkers import census
from repro.core.timed import min_timed_delta
from repro.workloads import (
    random_history,
    random_linearizable_history,
    random_replica_history,
    random_sc_history,
)

GENERATORS = [
    ("linearizable", random_linearizable_history),
    ("sc-construction", random_sc_history),
    ("replica(cc)", random_replica_history),
    ("unconstrained", random_history),
]


def build_population(per_generator=12, seed=2024):
    rng = random.Random(seed)
    histories = []
    for _name, generator in GENERATORS:
        for _ in range(per_generator):
            histories.append(generator(rng))
    return histories


def run_census(histories):
    # One interesting delta per execution: its own timedness threshold
    # (TSC/TCC hold iff the ordering criterion does), plus a strict delta.
    counts_total = {}
    violations = 0
    for history in histories:
        for delta in (min_timed_delta(history), 0.0):
            counts = census([history], delta)
            violations += counts.pop("__hierarchy_violations__")
            counts.pop("__budget_unknown__", None)
            for region, n in counts.items():
                counts_total[region] = counts_total.get(region, 0) + n
    return counts_total, violations


def run_extended_census(histories):
    """Classify against the wider family: SC => CC => PRAM, SC => Coherence."""
    from repro.checkers import check_cc, check_sc
    from repro.checkers.extensions import check_coherence, check_pram

    counts = {}
    violations = 0
    for history in histories:
        sc = check_sc(history).satisfied
        cc = check_cc(history).satisfied
        pram = check_pram(history).satisfied
        coh = check_coherence(history).satisfied
        if sc and not cc:
            violations += 1
        if cc and not pram:
            violations += 1
        if sc and not coh:
            violations += 1
        tags = [name for name, ok in
                (("SC", sc), ("CC", cc), ("PRAM", pram), ("Coh", coh)) if ok]
        region = "+".join(tags) if tags else "none"
        counts[region] = counts.get(region, 0) + 1
    return counts, violations


def test_extended_hierarchy_census(benchmark):
    histories = build_population(per_generator=10, seed=77)
    counts, violations = benchmark.pedantic(
        run_extended_census, args=(histories,), rounds=1, iterations=1
    )
    assert violations == 0
    rows = [
        {"region": region, "executions": n}
        for region, n in sorted(counts.items(), key=lambda kv: -kv[1])
    ]
    rows.append({"region": "CONTAINMENT VIOLATIONS", "executions": violations})
    report(
        "Beyond Figure 4(a) — the wider family on the same population "
        "(SC ⊆ CC ⊆ PRAM; SC ⊆ Coherence)",
        rows,
        columns=["region", "executions"],
    )


def test_hierarchy_census(benchmark):
    histories = build_population()
    counts, violations = benchmark.pedantic(
        run_census, args=(histories,), rounds=1, iterations=1
    )
    assert violations == 0
    # Sanity: the population really spans several regions of Figure 4a.
    assert len(counts) >= 3
    rows = [
        {"region": region, "executions": n}
        for region, n in sorted(counts.items(), key=lambda kv: -kv[1])
    ]
    rows.append({"region": "HIERARCHY VIOLATIONS", "executions": violations})
    report(
        "Figure 4(a) — census of generated executions over the hierarchy "
        "(each checked at delta = its threshold and at delta = 0)",
        rows,
        columns=["region", "executions"],
        notes="0 violations means every execution respects "
        "LIN ⊆ TSC ⊆ SC ⊆ CC, TCC ⊆ CC and TSC = TCC ∩ SC.",
    )
