"""Ablation (DESIGN.md decision 2): constraint saturation vs backtracking.

Deciding SC is NP-complete; the repo ships two exact engines.  This bench
measures both on the paper's figures and on a protocol trace, showing why
constraint saturation is the default (orders of magnitude on real traces)
while backtracking remains as the independent cross-check.
"""

import time

from _report import report

from repro.checkers import check_sc
from repro.paperdata import figure5, figure6
from repro.protocol import Cluster
from repro.workloads import uniform_workload


def protocol_trace(n_ops=60, n_clients=5, seed=8):
    cluster = Cluster(n_clients=n_clients, n_servers=1, variant="sc", seed=seed)
    cluster.spawn(uniform_workload(["A", "B", "C", "D"], n_ops=n_ops,
                                   write_fraction=0.25))
    cluster.run()
    return cluster.history()


def time_method(history, method):
    start = time.perf_counter()
    result = check_sc(history, method=method)
    return result.satisfied, time.perf_counter() - start


def test_constraint_vs_search(benchmark):
    cases = {
        "figure5 (25 ops)": figure5(),
        "figure6 (25 ops)": figure6(),
        "protocol trace (~400 ops)": protocol_trace(),
    }

    def run_all():
        rows = []
        for name, history in cases.items():
            sat_c, t_c = time_method(history, "constraint")
            if len(history) <= 100:
                sat_s, t_s = time_method(history, "search")
                assert sat_c == sat_s
                search_time = f"{t_s * 1000:.1f}ms"
            else:
                search_time = "(skipped: explodes)"
            rows.append(
                {
                    "history": name,
                    "verdict": sat_c,
                    "constraint": f"{t_c * 1000:.1f}ms",
                    "search": search_time,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "Ablation — SC checking engines (constraint saturation vs "
        "memoized backtracking)",
        rows,
        columns=["history", "verdict", "constraint", "search"],
        notes="Both engines are exact; they agree wherever both run "
        "(also property-tested).  Saturation scales to protocol traces.",
    )


def test_constraint_scales(benchmark):
    """Time the default engine on a full protocol trace."""
    history = protocol_trace(n_ops=60, n_clients=6, seed=9)
    result = benchmark(lambda: check_sc(history))
    assert result.satisfied


def test_constraint_scaling_curve(benchmark):
    """The saturation engine's growth across trace sizes: the per-op cost
    must stay near-polynomial (no exponential blow-up on protocol traces,
    despite NP-completeness of the problem)."""

    def run_curve():
        rows = []
        for n_ops in (20, 40, 80, 160):
            history = protocol_trace(n_ops=n_ops, n_clients=5, seed=8)
            sat, seconds = time_method(history, "constraint")
            assert sat
            rows.append(
                {
                    "trace_ops": len(history),
                    "check_ms": round(seconds * 1000, 1),
                    "us_per_op": round(seconds * 1e6 / len(history), 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    # Near-polynomial: quadrupling ops must not blow cost up by > ~100x.
    assert rows[-1]["check_ms"] < rows[0]["check_ms"] * 400 + 500
    report(
        "Ablation — constraint-saturation SC checker scaling on protocol traces",
        rows,
        columns=["trace_ops", "check_ms", "us_per_op"],
        notes="Exact checking of an NP-complete property, kept tractable by "
        "saturation: protocol traces resolve (almost) without branching.",
    )
