"""Shared reporting for the benchmark suite.

Every bench calls :func:`report` with the rows/series the paper's
narrative describes; the rows are printed (visible with ``pytest -s``)
and appended to ``benchmarks/latest_results.txt`` so a normal
``pytest benchmarks/ --benchmark-only`` run leaves the full comparison
tables on disk.  EXPERIMENTS.md is the curated paper-vs-measured record.
"""

from __future__ import annotations

import pathlib
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import render_table

RESULTS_PATH = pathlib.Path(__file__).parent / "latest_results.txt"
_lock = threading.Lock()


def reset_results() -> None:
    RESULTS_PATH.write_text("")


def report(
    title: str,
    rows: Sequence[Dict[str, Any]],
    columns: Optional[List[str]] = None,
    notes: str = "",
) -> None:
    """Print and persist one experiment's result table."""
    text = render_table(rows, columns, title=title)
    if notes:
        text += f"\n{notes}"
    with _lock:
        with RESULTS_PATH.open("a") as fh:
            fh.write(text + "\n\n")
    print()
    print(text)


def bench_json(
    name: str,
    config: Dict[str, Any],
    metrics: Dict[str, Any],
    notes: str = "",
) -> pathlib.Path:
    """Write ``benchmarks/BENCH_<name>.json`` (the machine-readable twin
    of :func:`report`) through the canonical schema-stable writer in
    :mod:`repro.load.report`, so every bench's headline numbers are
    diffable PR over PR via ``repro load compare``."""
    from repro.load.report import write_bench_json

    path = pathlib.Path(__file__).parent / f"BENCH_{name}.json"
    with _lock:
        write_bench_json(str(path), name, config, metrics, notes)
    print(f"wrote {path}")
    return path
